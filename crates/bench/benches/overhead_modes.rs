//! Live per-invocation overhead by execution mode — the microbenchmark
//! behind the paper's Table 2: how much does it cost to run one trivial
//! function locally, as a reloaded stateless task, and as an invocation
//! against a retained library context?

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vine_core::context::{CodeArtifact, LibrarySpec};
use vine_core::ids::{InvocationId, TaskId};
use vine_core::resources::Resources;
use vine_core::task::{ExecMode, FunctionCall, TaskSpec, WorkUnit};
use vine_lang::{pickle, Interp, ModuleRegistry, Value};
use vine_runtime::worker_host::execute_task;
use vine_runtime::{run_tcp_worker, Runtime, RuntimeConfig, TcpTransport};

const MODULE_SRC: &str = r#"
def context_setup(n) {
    global table
    table = []
    for i in range(n) { push(table, i * i) }
}
def lookup(i) {
    return table[i]
}
"#;

fn bench_local_invocation(c: &mut Criterion) {
    // the paper's "Local Invocation" row: a warm interpreter, direct call
    let mut interp = Interp::new();
    interp.exec_source(MODULE_SRC).unwrap();
    interp.exec_source("context_setup(512)").unwrap();
    c.bench_function("local_invocation", |b| {
        let mut i = 0i64;
        b.iter(|| {
            i = (i + 1) % 512;
            black_box(interp.call_global("lookup", &[Value::Int(i)]).unwrap())
        })
    });
}

fn bench_task_reload(c: &mut Criterion) {
    // the "Remote Task" cost structure: every execution reconstructs the
    // code AND re-runs the context setup
    let mut task = TaskSpec::new(TaskId(1), "wrapped");
    task.code = vec![CodeArtifact::Source {
        name: "module".into(),
        text: format!("{MODULE_SRC}\ncontext_setup(512)"),
    }];
    task.function = Some("lookup".into());
    task.args_blob = pickle::serialize_args(&[Value::Int(7)]).unwrap();
    c.bench_function("task_reloads_context", |b| {
        b.iter(|| black_box(execute_task(&task, ModuleRegistry::new())))
    });
}

fn bench_invocation_reuses_context(c: &mut Criterion) {
    // the "Remote Invocation" cost structure: context set up once, each
    // call pays only argument deserialization + execution + result
    // serialization
    let mut interp = Interp::new();
    interp.exec_source(MODULE_SRC).unwrap();
    interp.exec_source("context_setup(512)").unwrap();
    let args_blob = pickle::serialize_args(&[Value::Int(7)]).unwrap();
    c.bench_function("invocation_reuses_context", |b| {
        b.iter(|| {
            let args = pickle::deserialize_args(&args_blob, &interp.globals).unwrap();
            let out = interp.call_global("lookup", &args).unwrap();
            black_box(pickle::serialize_value(&out).unwrap())
        })
    });
}

fn bench_context_setup_itself(c: &mut Criterion) {
    // what reuse amortizes away: the setup cost itself
    c.bench_function("context_setup_cost", |b| {
        b.iter(|| {
            let mut interp = Interp::new();
            interp.exec_source(MODULE_SRC).unwrap();
            interp.exec_source("context_setup(512)").unwrap();
            black_box(interp.get_global("table").unwrap())
        })
    });
}

fn trivial_runtime_setup(rt: &mut Runtime) {
    let mut spec = LibrarySpec::new("trivial");
    spec.functions = vec!["trivial".into()];
    spec.resources = Some(Resources::new(1, 512, 512));
    spec.slots = Some(2);
    spec.exec_mode = ExecMode::Direct;
    rt.install_library(spec, "def trivial(a, b) { return a + b }\n", vec![], &[])
        .unwrap();
}

fn invocation_round_trip(rt: &mut Runtime, i: &mut u64) {
    let mut c = FunctionCall::new(
        InvocationId(*i),
        "trivial",
        "trivial",
        pickle::serialize_args(&[Value::Int(*i as i64), Value::Int(1)]).unwrap(),
    );
    *i += 1;
    c.resources = Resources::new(1, 256, 256);
    rt.submit(WorkUnit::Call(c));
    let outcome = rt.run_next().unwrap().expect("one outcome per submit");
    assert!(outcome.success);
    black_box(outcome);
}

fn bench_live_invocation_inproc(c: &mut Criterion) {
    // the full manager → worker → library → manager round trip, over
    // in-process channels: scheduling + channel hops, no serialization
    let mut rt = Runtime::new(RuntimeConfig {
        workers: 1,
        ..Default::default()
    });
    trivial_runtime_setup(&mut rt);
    let mut i = 0u64;
    c.bench_function("live_invocation_inproc", |b| {
        b.iter(|| invocation_round_trip(&mut rt, &mut i))
    });
    rt.shutdown();
}

fn bench_live_invocation_tcp(c: &mut Criterion) {
    // the same round trip with every message framed over a loopback
    // socket: the wire cost Table 2's live analogue reads off directly
    let transport = TcpTransport::listen("127.0.0.1:0").expect("bind loopback");
    let addr = transport.local_addr();
    let worker = std::thread::spawn(move || {
        run_tcp_worker(
            addr,
            Resources::new(8, 16 * 1024, 16 * 1024),
            ModuleRegistry::new(),
        )
        .unwrap();
    });
    let mut rt = Runtime::with_transport(
        RuntimeConfig {
            workers: 1,
            ..Default::default()
        },
        Box::new(transport),
    )
    .expect("tcp worker joins");
    trivial_runtime_setup(&mut rt);
    let mut i = 0u64;
    c.bench_function("live_invocation_tcp_loopback", |b| {
        b.iter(|| invocation_round_trip(&mut rt, &mut i))
    });
    rt.shutdown();
    worker.join().unwrap();
}

fn bench_reactor_fleet_wave(c: &mut Criterion) {
    // connection scaling: one synchronous ping wave (a small frame to
    // every worker, then all echoes) across a 64-connection fleet served
    // by one reactor thread — the per-message cost the scaling claim in
    // BENCH_net.json rests on, sampled continuously here
    let mut fleet = bench::net::FleetBench::start(64);
    fleet.ping_wave(); // warm every connection's path
    c.bench_function("reactor_wave_64_conns", |b| {
        b.iter(|| black_box(fleet.ping_wave()))
    });
    fleet.finish();
}

criterion_group!(
    benches,
    bench_local_invocation,
    bench_task_reload,
    bench_invocation_reuses_context,
    bench_context_setup_itself,
    bench_live_invocation_inproc,
    bench_live_invocation_tcp,
    bench_reactor_fleet_wave
);
criterion_main!(benches);
