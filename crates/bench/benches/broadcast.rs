//! Broadcast planning (Fig 3) and the fan-out-cap ablation from DESIGN.md:
//! planning cost and plan quality (depth) for sequential, spanning-tree
//! (N ∈ {1, 2, 3, 4, 8}) and clustered strategies at cluster scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use vine_core::ids::WorkerId;
use vine_transfer::{plan_broadcast, Topology};

fn workers(n: u32) -> Vec<WorkerId> {
    (0..n).map(WorkerId).collect()
}

fn bench_plan_star(c: &mut Criterion) {
    let ws = workers(150);
    c.bench_function("plan_star_150", |b| {
        b.iter(|| black_box(plan_broadcast(&Topology::Star, &ws).unwrap()))
    });
}

fn bench_plan_tree_fanout_sweep(c: &mut Criterion) {
    let ws = workers(150);
    let mut group = c.benchmark_group("plan_tree_150");
    for cap in [1usize, 2, 3, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(cap), &cap, |b, cap| {
            b.iter(|| {
                let plan = plan_broadcast(&Topology::FullPeer { fanout_cap: *cap }, &ws).unwrap();
                // plan quality is part of what the ablation reports
                black_box((plan.depth(), plan.manager_sends()))
            })
        });
    }
    group.finish();
}

fn bench_plan_clustered(c: &mut Criterion) {
    let ws = workers(150);
    let clusters = vec![ws[..75].to_vec(), ws[75..].to_vec()];
    let topo = Topology::Clustered {
        clusters,
        fanout_cap: 3,
    };
    c.bench_function("plan_clustered_2x75", |b| {
        b.iter(|| black_box(plan_broadcast(&topo, &ws).unwrap()))
    });
}

fn bench_plan_scales_with_cluster(c: &mut Criterion) {
    let mut group = c.benchmark_group("plan_tree_scaling");
    for n in [50u32, 150, 500, 2000] {
        let ws = workers(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &ws, |b, ws| {
            b.iter(|| black_box(plan_broadcast(&Topology::FullPeer { fanout_cap: 3 }, ws).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_plan_star,
    bench_plan_tree_fanout_sweep,
    bench_plan_clustered,
    bench_plan_scales_with_cluster
);
criterion_main!(benches);
