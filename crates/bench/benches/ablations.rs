//! Ablation benchmarks for the design decisions DESIGN.md calls out:
//! scheduler decision throughput, cache eviction under churn, dependency
//! resolution of the paper-sized environment, and fluid-pool bookkeeping
//! at L1-scale flow counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use vine_core::context::LibrarySpec;
use vine_core::ids::{ContentHash, InvocationId, WorkerId};
use vine_core::resources::Resources;
use vine_core::task::{FunctionCall, UnitId, WorkUnit};
use vine_core::SimTime;
use vine_data::WorkerCache;
use vine_env::catalog;
use vine_manager::{Decision, Manager};
use vine_sim::engine::FluidPool;

/// Manager decision throughput: the single-threaded manager loop is the
/// paper's bottleneck at L1/L2 — ours had better be fast.
fn bench_scheduler_throughput(c: &mut Criterion) {
    c.bench_function("manager_dispatch_1000_calls", |b| {
        b.iter_with_setup(
            || {
                let mut m = Manager::new();
                let mut spec = LibrarySpec::new("lnni");
                spec.functions = vec!["infer".into()];
                spec.resources = Some(Resources::lnni_invocation());
                spec.slots = Some(1);
                m.register_library(spec);
                for w in 0..64u32 {
                    m.worker_joined(WorkerId(w), Resources::paper_worker());
                }
                for i in 0..1000u64 {
                    let mut call = FunctionCall::new(InvocationId(i), "lnni", "infer", vec![]);
                    call.resources = Resources::lnni_invocation();
                    m.submit(WorkUnit::Call(call));
                }
                m
            },
            |mut m| {
                let mut done = 0u32;
                while let Some(d) = m.next_decision() {
                    match d {
                        Decision::InstallLibrary {
                            worker, instance, ..
                        } => {
                            m.library_ready(worker, instance).unwrap();
                        }
                        Decision::DispatchCall { call, .. } => {
                            // complete immediately: measures pure
                            // scheduling bookkeeping
                            m.unit_finished(UnitId::Call(call.id)).unwrap();
                            done += 1;
                        }
                        _ => {}
                    }
                }
                black_box(done)
            },
        )
    });
}

/// Cache churn: LRU insert/evict/pin at worker-disk scale.
fn bench_cache_churn(c: &mut Criterion) {
    c.bench_function("worker_cache_churn_10k", |b| {
        b.iter(|| {
            let mut cache = WorkerCache::new(1 << 30);
            for i in 0u64..10_000 {
                let h = ContentHash::of_bytes(&i.to_le_bytes());
                cache.insert(h, (i % 997 + 1) * 4096).unwrap();
                if i % 3 == 0 {
                    let _ = cache.lookup(h);
                }
            }
            black_box(cache.used())
        })
    });
}

/// Dependency resolution of the paper's 144-package LNNI environment —
/// what the discover mechanism runs per library creation.
fn bench_resolver(c: &mut Criterion) {
    let registry = catalog::standard_registry();
    c.bench_function("resolve_lnni_144_packages", |b| {
        b.iter(|| black_box(vine_env::resolve(&registry, &catalog::lnni_requirements()).unwrap()))
    });
    c.bench_function("pack_lnni_environment", |b| {
        let res = vine_env::resolve(&registry, &catalog::lnni_requirements()).unwrap();
        b.iter(|| black_box(vine_env::pack("lnni-env", &res)))
    });
}

/// Fluid-pool bookkeeping at the L1 run's concurrency (≈300 concurrent
/// shared-FS flows): add/advance/complete cycles.
fn bench_fluid_pool(c: &mut Criterion) {
    let mut group = c.benchmark_group("fluid_pool_cycle");
    for flows in [30usize, 300] {
        group.bench_with_input(BenchmarkId::from_parameter(flows), &flows, |b, flows| {
            b.iter(|| {
                let mut pool = FluidPool::new(10.5e9, 36.0e6);
                let mut t = SimTime::ZERO;
                for i in 0..*flows {
                    pool.add(t, i as u64, 340.0e6);
                    t += vine_core::SimDuration::from_millis(1);
                }
                let mut completed = 0;
                while completed < *flows {
                    let Some(next) = pool.next_completion(t) else {
                        break;
                    };
                    t = next;
                    completed += pool.take_completed(t).len();
                }
                black_box(completed)
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_scheduler_throughput,
    bench_cache_churn,
    bench_resolver,
    bench_fluid_pool
);
criterion_main!(benches);
