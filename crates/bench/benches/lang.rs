//! vine-lang substrate benchmarks: the code paths every discover/ship/
//! reconstruct cycle exercises — lexing, parsing, serialization round
//! trips, interpretation, and the LNNI inference kernel.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use vine_lang::{pickle, Interp, Value};

const BIG_SOURCE: &str = r#"
import nn
def context_setup(layers, dim) {
    global model
    model = nn.load_model(layers, dim)
}
def infer(first_image, count) {
    classes = []
    for img in range(first_image, first_image + count) {
        push(classes, nn.forward(model, img))
    }
    return classes
}
def helper_a(x, y) {
    if x > y { return x - y } else { return y - x }
}
def helper_b(items) {
    total = 0
    for it in items {
        if it % 2 == 0 { total += it } else { total -= it }
    }
    return total
}
"#;

fn bench_parse(c: &mut Criterion) {
    let mut group = c.benchmark_group("parse");
    group.throughput(Throughput::Bytes(BIG_SOURCE.len() as u64));
    group.bench_function("lnni_module", |b| {
        b.iter(|| black_box(vine_lang::parse(BIG_SOURCE).unwrap()))
    });
    group.finish();
}

fn bench_pickle_roundtrip(c: &mut Criterion) {
    // a result payload like LNNI's: a list of 1,600 class ids
    let classes = Value::list((0..1600).map(|i| Value::Int(i % 1000)).collect());
    let blob = pickle::serialize_value(&classes).unwrap();
    let mut group = c.benchmark_group("pickle");
    group.throughput(Throughput::Bytes(blob.len() as u64));
    group.bench_function("serialize_result_1600", |b| {
        b.iter(|| black_box(pickle::serialize_value(&classes).unwrap()))
    });
    group.bench_function("deserialize_result_1600", |b| {
        let globals = std::rc::Rc::new(std::cell::RefCell::new(Default::default()));
        b.iter(|| black_box(pickle::deserialize_value(&blob, &globals).unwrap()))
    });
    group.finish();
}

fn bench_function_shipping(c: &mut Criterion) {
    // discover → serialize → reconstruct: the cloudpickle path
    let prog = vine_lang::parse(BIG_SOURCE).unwrap();
    let def = prog
        .iter()
        .find_map(|s| match &s.kind {
            vine_lang::StmtKind::FuncDef(d) if d.name == "infer" => Some(d.clone()),
            _ => None,
        })
        .unwrap();
    let blob = pickle::serialize_funcdef(&def);
    c.bench_function("ship_function_roundtrip", |b| {
        b.iter(|| {
            let bytes = pickle::serialize_funcdef(black_box(&def));
            black_box(pickle::deserialize_funcdef(&bytes).unwrap())
        })
    });
    c.bench_function("extract_source_inspect", |b| {
        b.iter(|| black_box(vine_lang::inspect::extract_source(BIG_SOURCE, "infer").unwrap()))
    });
    let _ = blob;
}

fn bench_interpreter(c: &mut Criterion) {
    c.bench_function("interp_fib_18", |b| {
        let mut interp = Interp::new();
        interp
            .exec_source("def fib(n) { if n < 2 { return n }\nreturn fib(n-1) + fib(n-2) }")
            .unwrap();
        b.iter(|| black_box(interp.call_global("fib", &[Value::Int(18)]).unwrap()))
    });
}

fn bench_nn_forward(c: &mut Criterion) {
    // the real LNNI kernel at two model sizes
    let mut group = c.benchmark_group("nn_forward");
    for dim in [32i64, 128] {
        let mut interp = Interp::with_registry(vine_apps::modules::full_registry());
        interp.exec_source(vine_apps::lnni::LNNI_SOURCE).unwrap();
        interp
            .exec_source(&format!("context_setup(4, {dim})"))
            .unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(dim), &dim, move |b, _| {
            let mut img = 0i64;
            b.iter(|| {
                img += 1;
                black_box(
                    interp
                        .call_global("infer", &[Value::Int(img), Value::Int(1)])
                        .unwrap(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_parse,
    bench_pickle_roundtrip,
    bench_function_shipping,
    bench_interpreter,
    bench_nn_forward
);
criterion_main!(benches);
