//! Acceptance pin for `repro analyze`: on the naive LNNI user module the
//! dataflow pass must hoist strictly more than the syntactic pass (the
//! `capacity = served + 4096` fold is exactly the case syntax cannot
//! see), and the CLI must print that delta.

use vine_lang::ast::StmtKind;

const WORK: [&str; 2] = ["classify", "remaining"];

fn module_statement_count(src: &str) -> usize {
    vine_lang::parse(src)
        .unwrap()
        .iter()
        .filter(|s| !matches!(s.kind, StmtKind::FuncDef(_)))
        .count()
}

#[test]
fn flow_hoists_strictly_more_than_syntactic_on_lnni_user() {
    let src = vine_apps::lnni::LNNI_USER_SOURCE;
    let candidates = module_statement_count(src);
    let syn = vine_lang::autocontext::discover(src, &WORK).unwrap();
    let flow = vine_flow::discover(src, &WORK).unwrap();
    let syn_hoisted = candidates - syn.residue.len();
    assert!(
        flow.hoisted.len() > syn_hoisted,
        "flow hoisted {} vs syntactic {syn_hoisted}",
        flow.hoisted.len()
    );
    // the margin comes from constant folding through the mutated counter
    assert!(flow.folded >= 1, "expected at least one folded statement");
    assert!(flow.context.provides.contains(&"capacity".to_string()));
    assert!(!flow.context.provides.contains(&"served".to_string()));
}

#[test]
fn repro_analyze_prints_positive_delta_and_checks_clean() {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["analyze", "--check"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("run repro analyze");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "repro analyze --check failed:\n{stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("== lnni-user =="), "{stdout}");
    assert!(stdout.contains("== examol =="), "{stdout}");
    // the lnni-user section must report a strictly positive delta
    let lnni = stdout.split("== lnni-user ==").nth(1).unwrap();
    let section = lnni.split("\n\n").next().unwrap();
    assert!(
        section.contains("[+"),
        "no positive delta printed:\n{section}"
    );
    assert!(section.contains("fold:"), "no fold annotation:\n{section}");
}
