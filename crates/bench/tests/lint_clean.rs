//! The shipped workflow sources must stay clean under `repro lint`: the
//! embedded application programs and every example vinescript file.

use std::collections::BTreeSet;
use std::path::PathBuf;

fn available_modules() -> BTreeSet<String> {
    let mut available: BTreeSet<String> = vine_apps::modules::full_registry()
        .names()
        .map(|s| s.to_string())
        .collect();
    available.extend(
        vine_env::catalog::standard_registry()
            .provided_modules()
            .map(|s| s.to_string()),
    );
    available
}

#[test]
fn embedded_application_sources_are_lint_clean() {
    let available = available_modules();
    for (name, src) in [
        ("lnni", vine_apps::lnni::LNNI_SOURCE),
        ("examol", vine_apps::examol::EXAMOL_SOURCE),
    ] {
        let report = vine_lint::lint_source_with_env(name, src, &available, None);
        assert!(
            report.is_clean(),
            "{name} must lint clean:\n{}",
            report.render()
        );
    }
}

#[test]
fn example_vinescript_files_are_lint_clean() {
    let available = available_modules();
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/vinescript");
    let mut checked = 0;
    for entry in std::fs::read_dir(&dir).expect("examples/vinescript exists") {
        let path = entry.unwrap().path();
        if path.extension().is_none_or(|x| x != "vine") {
            continue;
        }
        let src = std::fs::read_to_string(&path).unwrap();
        let report =
            vine_lint::lint_source_with_env(&path.display().to_string(), &src, &available, None);
        assert!(
            report.is_clean(),
            "{} must lint clean:\n{}",
            path.display(),
            report.render()
        );
        checked += 1;
    }
    assert!(checked >= 2, "expected at least two example scripts");
}
