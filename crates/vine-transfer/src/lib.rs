//! # vine-transfer
//!
//! The **distribute** mechanism (paper §2.2.2, Figure 3): broadcast a
//! function context's files to every worker as fast as the cluster's
//! network policy allows. Three strategies, chosen by worker-to-worker
//! connectivity:
//!
//! * [`Topology::Star`] — workers cannot talk to each other (Fig 3a): the
//!   manager sends to each worker sequentially.
//! * [`Topology::FullPeer`] — unrestricted worker-to-worker transfers
//!   (Fig 3b): a spanning tree where every node that holds the file serves
//!   up to `fanout_cap` children ("each worker is capped to N transfers of
//!   input files at any given time to avoid a sink in the spanning tree",
//!   §3.3).
//! * [`Topology::Clustered`] — bandwidth is limited *between* sets of
//!   workers (Fig 3c: on-premise + cloud): the manager seeds one gateway
//!   per cluster sequentially; each cluster then runs its own spanning
//!   tree.
//!
//! Plans are static DAGs of [`TransferStep`]s; the execution substrate
//! (simulator or live runtime) schedules them respecting the dependencies
//! and its own link model. [`TransferLimiter`] enforces the per-node cap
//! for dynamic (on-demand) transfers outside planned broadcasts.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use vine_core::ids::WorkerId;
use vine_core::{Result, VineError};

/// A node that can source a transfer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Node {
    Manager,
    Worker(WorkerId),
}

/// One edge of a broadcast plan: move the file from `source` to `dest`,
/// but not before step `depends_on` (which delivered the file to `source`)
/// has completed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransferStep {
    pub source: Node,
    pub dest: WorkerId,
    /// Index into [`BroadcastPlan::steps`] of the prerequisite step, if the
    /// source is a worker that must first receive the file itself.
    pub depends_on: Option<usize>,
}

/// A complete broadcast plan.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct BroadcastPlan {
    pub steps: Vec<TransferStep>,
}

/// Broadcast strategy (Figure 3).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Topology {
    /// Fig 3a — no worker-to-worker communication.
    Star,
    /// Fig 3b — full worker-to-worker communication, spanning tree with a
    /// per-node fan-out cap.
    FullPeer { fanout_cap: usize },
    /// Fig 3c — limited communication between clusters; full within.
    Clustered {
        clusters: Vec<Vec<WorkerId>>,
        fanout_cap: usize,
    },
}

/// Plan a broadcast of one file to `workers` under `topology`.
pub fn plan_broadcast(topology: &Topology, workers: &[WorkerId]) -> Result<BroadcastPlan> {
    match topology {
        Topology::Star => Ok(plan_star(workers)),
        Topology::FullPeer { fanout_cap } => {
            if *fanout_cap == 0 {
                return Err(VineError::Protocol("fan-out cap must be ≥ 1".into()));
            }
            Ok(plan_tree(Node::Manager, None, workers, *fanout_cap))
        }
        Topology::Clustered {
            clusters,
            fanout_cap,
        } => {
            if *fanout_cap == 0 {
                return Err(VineError::Protocol("fan-out cap must be ≥ 1".into()));
            }
            plan_clustered(clusters, workers, *fanout_cap)
        }
    }
}

/// Fig 3a: the manager sends to each worker; transfers serialize on the
/// manager's single uplink, expressed as a dependency chain.
fn plan_star(workers: &[WorkerId]) -> BroadcastPlan {
    let steps = workers
        .iter()
        .enumerate()
        .map(|(i, w)| TransferStep {
            source: Node::Manager,
            dest: *w,
            depends_on: if i == 0 { None } else { Some(i - 1) },
        })
        .collect();
    BroadcastPlan { steps }
}

/// Spanning tree rooted at `root`: breadth-first, each node (including the
/// root) feeding up to `cap` children. `root_dep` is the plan step that
/// delivered the file to a worker root (for clustered plans).
fn plan_tree(
    root: Node,
    root_dep: Option<usize>,
    workers: &[WorkerId],
    cap: usize,
) -> BroadcastPlan {
    let mut steps: Vec<TransferStep> = Vec::with_capacity(workers.len());
    // sources available to serve: (node, prerequisite step index)
    let mut frontier: Vec<(Node, Option<usize>)> = vec![(root, root_dep)];
    let mut next = 0usize;
    while next < workers.len() {
        let mut new_frontier = Vec::new();
        for (src, dep) in &frontier {
            for _ in 0..cap {
                if next >= workers.len() {
                    break;
                }
                let dest = workers[next];
                next += 1;
                steps.push(TransferStep {
                    source: *src,
                    dest,
                    depends_on: *dep,
                });
                new_frontier.push((Node::Worker(dest), Some(steps.len() - 1)));
            }
        }
        // nodes keep serving in later waves too: a real spanning-tree
        // broadcast reuses every holder each round
        frontier.extend(new_frontier);
    }
    BroadcastPlan { steps }
}

/// Fig 3c: sequential manager→gateway transfers between clusters, then a
/// spanning tree inside each cluster.
fn plan_clustered(
    clusters: &[Vec<WorkerId>],
    workers: &[WorkerId],
    cap: usize,
) -> Result<BroadcastPlan> {
    // validate the partition
    let mut seen: BTreeMap<WorkerId, usize> = BTreeMap::new();
    for (ci, cluster) in clusters.iter().enumerate() {
        for w in cluster {
            if seen.insert(*w, ci).is_some() {
                return Err(VineError::Protocol(format!(
                    "worker {w} appears in multiple clusters"
                )));
            }
        }
    }
    for w in workers {
        if !seen.contains_key(w) {
            return Err(VineError::Protocol(format!(
                "worker {w} not assigned to any cluster"
            )));
        }
    }

    let mut plan = BroadcastPlan::default();
    let mut prev_gateway_step: Option<usize> = None;
    for cluster in clusters {
        let members: Vec<WorkerId> = cluster
            .iter()
            .filter(|w| workers.contains(w))
            .copied()
            .collect();
        let Some((gateway, rest)) = members.split_first() else {
            continue;
        };
        // manager → gateway, serialized across clusters (the inter-cluster
        // link is the scarce resource)
        plan.steps.push(TransferStep {
            source: Node::Manager,
            dest: *gateway,
            depends_on: prev_gateway_step,
        });
        let gateway_step = plan.steps.len() - 1;
        prev_gateway_step = Some(gateway_step);
        // Intra-cluster spanning tree rooted at the gateway. The sub-plan
        // is built with *no* root dependency so that `None` unambiguously
        // marks "sourced from the gateway seed": the sub-plan's own step
        // indices are remapped by `offset`, and a local index can equal
        // `gateway_step` (both count from zero), so the root dependency
        // must not be encoded as an index at all before splicing.
        let sub = plan_tree(Node::Worker(*gateway), None, rest, cap);
        let offset = plan.steps.len();
        for s in sub.steps {
            plan.steps.push(TransferStep {
                source: s.source,
                dest: s.dest,
                depends_on: Some(match s.depends_on {
                    None => gateway_step,
                    Some(d) => d + offset,
                }),
            });
        }
    }
    Ok(plan)
}

impl BroadcastPlan {
    /// Longest dependency chain: the number of serialized transfer rounds
    /// a broadcast needs (lower bound on completion in units of one
    /// transfer time).
    pub fn depth(&self) -> usize {
        let mut depth = vec![0usize; self.steps.len()];
        let mut max = 0;
        for (i, s) in self.steps.iter().enumerate() {
            depth[i] = match s.depends_on {
                Some(d) => depth[d] + 1,
                None => 1,
            };
            max = max.max(depth[i]);
        }
        max
    }

    /// Destinations, for coverage checks.
    pub fn destinations(&self) -> Vec<WorkerId> {
        self.steps.iter().map(|s| s.dest).collect()
    }

    /// Number of transfers sourced from the manager (its uplink load).
    pub fn manager_sends(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| s.source == Node::Manager)
            .count()
    }
}

/// Runtime cap on concurrent outbound transfers per node, for on-demand
/// (unplanned) peer fetches.
#[derive(Debug, Default)]
pub struct TransferLimiter {
    cap: usize,
    active: BTreeMap<Node, usize>,
}

impl TransferLimiter {
    pub fn new(cap: usize) -> TransferLimiter {
        TransferLimiter {
            cap: cap.max(1),
            active: BTreeMap::new(),
        }
    }

    /// Try to reserve an outbound slot on `node`.
    pub fn try_acquire(&mut self, node: Node) -> bool {
        let n = self.active.entry(node).or_insert(0);
        if *n >= self.cap {
            return false;
        }
        *n += 1;
        true
    }

    pub fn release(&mut self, node: Node) -> Result<()> {
        match self.active.get_mut(&node) {
            Some(n) if *n > 0 => {
                *n -= 1;
                Ok(())
            }
            _ => Err(VineError::Internal(format!(
                "transfer slot release without acquire on {node:?}"
            ))),
        }
    }

    pub fn active_on(&self, node: Node) -> usize {
        self.active.get(&node).copied().unwrap_or(0)
    }

    /// Pick a source for `hash`-holding candidates with a free slot,
    /// preferring workers over the manager (offloading the manager uplink,
    /// as TaskVine does once peer transfer is enabled).
    pub fn pick_source(&self, holders: &[Node]) -> Option<Node> {
        holders
            .iter()
            .filter(|n| self.active_on(**n) < self.cap)
            .max_by_key(|n| match n {
                Node::Worker(_) => (1, usize::MAX - self.active_on(**n)),
                Node::Manager => (0, usize::MAX - self.active_on(**n)),
            })
            .copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workers(n: u32) -> Vec<WorkerId> {
        (0..n).map(WorkerId).collect()
    }

    fn assert_coverage(plan: &BroadcastPlan, ws: &[WorkerId]) {
        let mut dests = plan.destinations();
        dests.sort_unstable();
        let mut want = ws.to_vec();
        want.sort_unstable();
        assert_eq!(dests, want, "every worker exactly once");
    }

    #[test]
    fn star_is_a_chain() {
        let ws = workers(5);
        let plan = plan_broadcast(&Topology::Star, &ws).unwrap();
        assert_coverage(&plan, &ws);
        assert_eq!(plan.depth(), 5, "sequential: depth equals worker count");
        assert_eq!(plan.manager_sends(), 5);
    }

    #[test]
    fn tree_depth_is_logarithmic() {
        let ws = workers(150);
        let plan = plan_broadcast(&Topology::FullPeer { fanout_cap: 3 }, &ws).unwrap();
        assert_coverage(&plan, &ws);
        // each round multiplies holders by (1 + cap) = 4: 1→4→16→64→256
        assert!(plan.depth() <= 5, "depth {}", plan.depth());
        assert!(plan.depth() >= 3);
        // manager only serves the cap directly per round; far fewer than all
        assert!(plan.manager_sends() < 20, "{}", plan.manager_sends());
    }

    #[test]
    fn tree_cap_one_manager_offloads() {
        // even with cap 1, holders double each round: depth ~ log2(n)
        let ws = workers(64);
        let plan = plan_broadcast(&Topology::FullPeer { fanout_cap: 1 }, &ws).unwrap();
        assert_coverage(&plan, &ws);
        assert!(plan.depth() <= 7, "depth {}", plan.depth());
    }

    /// The invariant every execution substrate relies on: a step's
    /// dependency is exactly the step that delivered the file to its
    /// source, dependencies point backwards, and no step sources from a
    /// node that does not yet hold the file.
    fn assert_wellformed(plan: &BroadcastPlan) {
        let mut have_file: Vec<Node> = vec![Node::Manager];
        for (i, s) in plan.steps.iter().enumerate() {
            // dependency indices always point backwards
            if let Some(d) = s.depends_on {
                assert!(d < i, "forward dependency at step {i}");
                // and the dependency is the step that delivered to source
                if let Node::Worker(w) = s.source {
                    assert_eq!(
                        plan.steps[d].dest, w,
                        "step {i} depends on step {d}, which delivered to \
                         {} rather than to its source {w}",
                        plan.steps[d].dest
                    );
                }
            } else {
                assert_eq!(s.source, Node::Manager);
            }
            assert!(
                have_file.contains(&s.source),
                "step {i} sources from a node without the file"
            );
            have_file.push(Node::Worker(s.dest));
        }
    }

    #[test]
    fn tree_dependencies_are_wellformed() {
        let ws = workers(40);
        for cap in [1, 2, 3] {
            let plan = plan_broadcast(&Topology::FullPeer { fanout_cap: cap }, &ws).unwrap();
            assert_coverage(&plan, &ws);
            assert_wellformed(&plan);
        }
        let plan = plan_broadcast(&Topology::Star, &ws).unwrap();
        assert_wellformed(&plan);

        // clustered plans splice sub-trees whose local step indices can
        // collide with the parent plan's gateway-step index (regression:
        // the remap once conflated "depends on the gateway seed" with
        // "depends on local step number gateway_step", letting a transfer
        // run before its source held the file)
        let shapes: &[(&[usize], usize)] = &[
            // first cluster deep enough that a local dep index 0 exists
            // while its gateway step is also index 0
            (&[6, 6], 1),
            (&[13, 14, 13], 1),
            (&[20, 20], 2),
            (&[5, 30, 5], 2),
            (&[1, 39], 3),
            (&[40], 3),
        ];
        for (sizes, cap) in shapes {
            let mut clusters = Vec::new();
            let mut at = 0usize;
            for sz in *sizes {
                clusters.push(ws[at..at + sz].to_vec());
                at += sz;
            }
            let topo = Topology::Clustered {
                clusters,
                fanout_cap: *cap,
            };
            let plan = plan_broadcast(&topo, &ws[..at]).unwrap();
            assert_coverage(&plan, &ws[..at]);
            assert_wellformed(&plan);
        }
    }

    #[test]
    fn zero_fanout_rejected() {
        assert!(plan_broadcast(&Topology::FullPeer { fanout_cap: 0 }, &workers(3)).is_err());
    }

    #[test]
    fn empty_worker_set() {
        for topo in [Topology::Star, Topology::FullPeer { fanout_cap: 3 }] {
            let plan = plan_broadcast(&topo, &[]).unwrap();
            assert!(plan.steps.is_empty());
            assert_eq!(plan.depth(), 0);
        }
    }

    #[test]
    fn clustered_seeds_gateways_sequentially() {
        let ws = workers(12);
        let clusters = vec![ws[..6].to_vec(), ws[6..].to_vec()];
        let plan = plan_broadcast(
            &Topology::Clustered {
                clusters,
                fanout_cap: 2,
            },
            &ws,
        )
        .unwrap();
        assert_coverage(&plan, &ws);
        // exactly one manager send per cluster
        assert_eq!(plan.manager_sends(), 2);
        // second gateway transfer depends on the first (serialized
        // inter-cluster link)
        let gateway_steps: Vec<usize> = plan
            .steps
            .iter()
            .enumerate()
            .filter(|(_, s)| s.source == Node::Manager)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(
            plan.steps[gateway_steps[1]].depends_on,
            Some(gateway_steps[0])
        );
        // no cross-cluster worker-to-worker edges
        let cluster_of = |w: WorkerId| (w.0 >= 6) as usize;
        for s in &plan.steps {
            if let Node::Worker(src) = s.source {
                assert_eq!(
                    cluster_of(src),
                    cluster_of(s.dest),
                    "cross-cluster edge {src} -> {}",
                    s.dest
                );
            }
        }
    }

    #[test]
    fn clustered_validates_partition() {
        let ws = workers(4);
        // overlapping clusters
        let bad = Topology::Clustered {
            clusters: vec![ws[..3].to_vec(), ws[2..].to_vec()],
            fanout_cap: 2,
        };
        assert!(plan_broadcast(&bad, &ws).is_err());
        // unassigned worker
        let bad = Topology::Clustered {
            clusters: vec![ws[..2].to_vec()],
            fanout_cap: 2,
        };
        assert!(plan_broadcast(&bad, &ws).is_err());
    }

    #[test]
    fn clustered_skips_empty_clusters() {
        let ws = workers(3);
        let topo = Topology::Clustered {
            clusters: vec![vec![], ws.to_vec(), vec![]],
            fanout_cap: 2,
        };
        let plan = plan_broadcast(&topo, &ws).unwrap();
        assert_coverage(&plan, &ws);
        assert_eq!(plan.manager_sends(), 1);
    }

    #[test]
    fn limiter_caps_and_releases() {
        let mut lim = TransferLimiter::new(2);
        let w = Node::Worker(WorkerId(1));
        assert!(lim.try_acquire(w));
        assert!(lim.try_acquire(w));
        assert!(!lim.try_acquire(w), "cap reached");
        lim.release(w).unwrap();
        assert!(lim.try_acquire(w));
        assert!(lim.release(Node::Manager).is_err(), "unbalanced release");
    }

    #[test]
    fn limiter_prefers_idle_workers_over_manager() {
        let mut lim = TransferLimiter::new(2);
        let w1 = Node::Worker(WorkerId(1));
        let w2 = Node::Worker(WorkerId(2));
        // w1 is busy, w2 idle, manager idle → pick w2
        assert!(lim.try_acquire(w1));
        let src = lim.pick_source(&[Node::Manager, w1, w2]).unwrap();
        assert_eq!(src, w2);
        // all workers saturated → fall back to manager
        assert!(lim.try_acquire(w1));
        assert!(lim.try_acquire(w2));
        assert!(lim.try_acquire(w2));
        let src = lim.pick_source(&[Node::Manager, w1, w2]).unwrap();
        assert_eq!(src, Node::Manager);
        // everything saturated → none
        assert!(lim.try_acquire(Node::Manager));
        assert!(lim.try_acquire(Node::Manager));
        assert!(lim.pick_source(&[Node::Manager, w1, w2]).is_none());
    }

    #[test]
    fn star_beats_nothing_tree_beats_star() {
        // the ablation the benches measure: tree depth ≪ star depth at scale
        let ws = workers(150);
        let star = plan_broadcast(&Topology::Star, &ws).unwrap();
        let tree = plan_broadcast(&Topology::FullPeer { fanout_cap: 3 }, &ws).unwrap();
        assert!(tree.depth() * 10 < star.depth());
    }
}
