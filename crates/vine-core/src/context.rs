//! Function context descriptors — the output of the **discover** mechanism.
//!
//! Paper §2.2.1: "The context includes four distinct elements: the function
//! code itself, the code's dependencies, input data, and arbitrary
//! environment setup." This module defines the portable representation of
//! those four elements that the manager packages, the transfer layer
//! broadcasts (§2.2.2), and the worker's library process retains (§2.2.3).

use crate::ids::{ContentHash, FileId};
use crate::resources::Resources;
use crate::task::ExecMode;
use serde::{Deserialize, Serialize};

/// Where a file can be fetched from.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FileSource {
    /// Staged from the manager node (and, if `peer_transfer`, from peers).
    /// This is the path the paper's L2/L3 levels use.
    Manager,
    /// Pulled from the cluster's shared filesystem on every access, the
    /// paper's L1 baseline ("all tasks are instructed to pull all data and
    /// software dependencies from the local Panasas ActiveStor 16 shared
    /// file system", §4.2).
    SharedFs,
}

/// A reference to one immutable file: the unit of data the distribute
/// mechanism moves and the worker cache retains.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FileRef {
    pub id: FileId,
    /// Content digest; the cache key for dedup and the safety basis for
    /// peer-to-peer transfer (§2.2.2).
    pub hash: ContentHash,
    /// Human-readable name, for traces and sandboxes.
    pub name: String,
    pub size_bytes: u64,
    /// May the worker keep this file in its local cache after the task that
    /// brought it completes? (TaskVine `cache=True`.)
    pub cache: bool,
    /// May workers exchange this file among themselves? (TaskVine
    /// `peer_transfer=True`.)
    pub peer_transfer: bool,
    pub source: FileSource,
    /// Size after unpacking, for packed environments (0 = not packed).
    /// The paper's LNNI environment is 572 MB packed, 3.1 GB unpacked
    /// (Table 5 discussion).
    pub unpacked_bytes: u64,
}

impl FileRef {
    pub fn new(id: FileId, name: impl Into<String>, content_hash: ContentHash, size: u64) -> Self {
        FileRef {
            id,
            hash: content_hash,
            name: name.into(),
            size_bytes: size,
            cache: true,
            peer_transfer: true,
            source: FileSource::Manager,
            unpacked_bytes: 0,
        }
    }

    pub fn from_shared_fs(mut self) -> Self {
        self.source = FileSource::SharedFs;
        self
    }

    pub fn uncached(mut self) -> Self {
        self.cache = false;
        self.peer_transfer = false;
        self
    }

    pub fn packed(mut self, unpacked_bytes: u64) -> Self {
        self.unpacked_bytes = unpacked_bytes;
        self
    }

    /// Bytes this file occupies on a worker's disk once materialized
    /// (unpacked if packed, raw otherwise).
    pub fn materialized_bytes(&self) -> u64 {
        if self.unpacked_bytes > 0 {
            self.unpacked_bytes
        } else {
            self.size_bytes
        }
    }
}

/// Function code in one of the two forms the discover mechanism produces
/// (§3.2): source text extracted by inspection, or a serialized code object
/// (the paper uses cloudpickle; we use the `vine-lang` serializer).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CodeArtifact {
    /// Source extracted from the defining module; the worker re-parses it
    /// and binds the function by name.
    Source { name: String, text: String },
    /// Serialized code object for functions with no recoverable source
    /// (lambdas, dynamically generated functions); the worker deserializes
    /// and reconstructs the object.
    Serialized { name: String, blob: Vec<u8> },
}

impl CodeArtifact {
    pub fn name(&self) -> &str {
        match self {
            CodeArtifact::Source { name, .. } | CodeArtifact::Serialized { name, .. } => name,
        }
    }

    pub fn size_bytes(&self) -> u64 {
        match self {
            CodeArtifact::Source { text, .. } => text.len() as u64,
            CodeArtifact::Serialized { blob, .. } => blob.len() as u64,
        }
    }
}

/// The arbitrary environment-setup element: an executable object run once
/// on the worker before any invocation; whatever state it builds (globals,
/// loaded models, open datasets) is what invocations reuse (§2.1.3, Fig 4).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SetupSpec {
    /// Name of the setup function; its code must be included in the context
    /// code artifacts.
    pub function: String,
    /// Serialized arguments passed to the setup function (paper Fig 5,
    /// `context_args=[y]`).
    pub args_blob: Vec<u8>,
}

/// The complete discovered context of a function (or a co-packaged set of
/// functions): everything a worker needs *besides* per-invocation arguments.
#[derive(Clone, Debug, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ContextSpec {
    /// Element 1 — function code.
    pub code: Vec<CodeArtifact>,
    /// Element 2 — software dependencies, packaged as an environment
    /// archive (the Poncho/conda-pack tarball analogue).
    pub environment: Option<FileRef>,
    /// Element 3 — shareable input data, bound to the context so concurrent
    /// invocations on a worker share one copy (data-to-invocation binding).
    pub data: Vec<FileRef>,
    /// Element 4 — arbitrary environment setup.
    pub setup: Option<SetupSpec>,
}

impl ContextSpec {
    /// All files the distribute mechanism must move for this context.
    pub fn files(&self) -> impl Iterator<Item = &FileRef> {
        self.environment.iter().chain(self.data.iter())
    }

    /// Total bytes shipped over the network for this context.
    pub fn transfer_bytes(&self) -> u64 {
        self.files().map(|f| f.size_bytes).sum::<u64>()
            + self.code.iter().map(|c| c.size_bytes()).sum::<u64>()
    }

    /// Total bytes occupied on a worker's disk once materialized.
    pub fn materialized_bytes(&self) -> u64 {
        self.files().map(|f| f.materialized_bytes()).sum::<u64>()
            + self.code.iter().map(|c| c.size_bytes()).sum::<u64>()
    }

    /// A stable digest of the whole context, used to deduplicate identical
    /// contexts on a worker (invocation-to-context binding, §2.2.1).
    pub fn digest(&self) -> ContentHash {
        let mut h = ContentHash::of_str("context");
        for c in &self.code {
            h = h.combine(match c {
                CodeArtifact::Source { text, .. } => ContentHash::of_str(text),
                CodeArtifact::Serialized { blob, .. } => ContentHash::of_bytes(blob),
            });
        }
        for f in self.files() {
            h = h.combine(f.hash);
        }
        if let Some(s) = &self.setup {
            h = h.combine(ContentHash::of_str(&s.function));
            h = h.combine(ContentHash::of_bytes(&s.args_blob));
        }
        h
    }
}

/// A *library*: the deployable unit that hosts one function context on a
/// worker as a daemon and serves invocations (§3.4). Created by
/// `Manager::create_library_from_functions` in the paper's API (Fig 5).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LibrarySpec {
    /// Library name; invocations address functions as (library, function).
    pub name: String,
    /// Names of the functions this library can execute.
    pub functions: Vec<String>,
    pub context: ContextSpec,
    /// Resources the library owns on a worker. Defaults to the whole worker
    /// ("a library by default takes all resources of a worker", §3.5.2);
    /// `None` means whole-worker.
    pub resources: Option<Resources>,
    /// Concurrent invocation slots ("a library has a logical type of
    /// resource called invocation slots", §3.5.2). `None` derives slots from
    /// library resources / per-invocation resources.
    pub slots: Option<u32>,
    /// Default execution option for invocations (§3.4 step 4).
    pub exec_mode: ExecMode,
}

impl LibrarySpec {
    pub fn new(name: impl Into<String>) -> Self {
        LibrarySpec {
            name: name.into(),
            functions: Vec::new(),
            context: ContextSpec::default(),
            resources: None,
            slots: None,
            exec_mode: ExecMode::Direct,
        }
    }

    pub fn hosts_function(&self, function: &str) -> bool {
        self.functions.iter().any(|f| f == function)
    }

    /// The **function-context digest** the shard router hashes onto the
    /// shard ring: library identity plus everything the context retains.
    /// Invocations of the same library land on the same shard, so a hot
    /// function's library instances concentrate where its context already
    /// lives instead of being rebuilt on every shard.
    pub fn routing_digest(&self) -> ContentHash {
        ContentHash::of_str(&self.name).combine(self.context.digest())
    }

    /// Resolve the slot count for a worker of the given capacity and a
    /// per-invocation allocation.
    pub fn resolve_slots(&self, worker: &Resources, per_invocation: &Resources) -> u32 {
        if let Some(s) = self.slots {
            return s.max(1);
        }
        let lib_res = self.resources.unwrap_or(*worker);
        lib_res.divide_by(per_invocation).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(id: u64, name: &str, content: &str, size: u64) -> FileRef {
        FileRef::new(FileId(id), name, ContentHash::of_str(content), size)
    }

    #[test]
    fn context_digest_changes_with_any_element() {
        let base = ContextSpec {
            code: vec![CodeArtifact::Source {
                name: "f".into(),
                text: "def f(x): x + 1".into(),
            }],
            environment: Some(file(1, "env.tar", "envdata", 100)),
            data: vec![file(2, "data.bin", "dataset", 200)],
            setup: Some(SetupSpec {
                function: "setup".into(),
                args_blob: vec![1, 2, 3],
            }),
        };
        let d0 = base.digest();

        let mut changed = base.clone();
        changed.code[0] = CodeArtifact::Source {
            name: "f".into(),
            text: "def f(x): x + 2".into(),
        };
        assert_ne!(changed.digest(), d0);

        let mut changed = base.clone();
        changed.data[0].hash = ContentHash::of_str("other");
        assert_ne!(changed.digest(), d0);

        let mut changed = base.clone();
        changed.setup.as_mut().unwrap().args_blob = vec![9];
        assert_ne!(changed.digest(), d0);

        // unchanged clone digests identically
        assert_eq!(base.clone().digest(), d0);
    }

    #[test]
    fn transfer_and_materialized_bytes() {
        let ctx = ContextSpec {
            code: vec![CodeArtifact::Serialized {
                name: "g".into(),
                blob: vec![0u8; 50],
            }],
            environment: Some(file(1, "env.tar", "env", 572).packed(3100)),
            data: vec![file(2, "model.bin", "params", 400)],
            setup: None,
        };
        assert_eq!(ctx.transfer_bytes(), 50 + 572 + 400);
        assert_eq!(ctx.materialized_bytes(), 50 + 3100 + 400);
    }

    #[test]
    fn packed_file_materializes_to_unpacked_size() {
        let f = file(1, "env.tar", "x", 572).packed(3100);
        assert_eq!(f.materialized_bytes(), 3100);
        let g = file(2, "plain.bin", "y", 10);
        assert_eq!(g.materialized_bytes(), 10);
    }

    #[test]
    fn library_slot_resolution() {
        let mut lib = LibrarySpec::new("lib");
        let worker = Resources::paper_worker();
        let invoc = Resources::lnni_invocation();

        // whole-worker library, derived slots: 16 (paper §4.2)
        assert_eq!(lib.resolve_slots(&worker, &invoc), 16);

        // explicit slot override wins
        lib.slots = Some(8);
        assert_eq!(lib.resolve_slots(&worker, &invoc), 8);

        // partial-worker library: 4 cores / 1 slot strategy (§3.5.2)
        lib.slots = None;
        lib.resources = Some(Resources::new(4, 8 * 1024, 8 * 1024));
        assert_eq!(
            lib.resolve_slots(&worker, &Resources::new(4, 8 * 1024, 8 * 1024)),
            1
        );
    }

    #[test]
    fn hosts_function_lookup() {
        let mut lib = LibrarySpec::new("lib");
        lib.functions = vec!["infer".into(), "train".into()];
        assert!(lib.hosts_function("infer"));
        assert!(!lib.hosts_function("simulate"));
    }

    #[test]
    fn shared_fs_and_uncached_builders() {
        let f = file(1, "a", "a", 1).from_shared_fs().uncached();
        assert_eq!(f.source, FileSource::SharedFs);
        assert!(!f.cache);
        assert!(!f.peer_transfer);
    }
}
