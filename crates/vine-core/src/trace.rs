//! Execution telemetry.
//!
//! Both execution substrates (the discrete-event simulator and the live
//! threaded runtime) emit the same trace records, from which every
//! evaluation artifact of the paper is computed: Table 4's run-time
//! statistics, Figure 7's histograms, Figure 10's deployed-library series,
//! Figure 11's library share values, and Table 5's phase breakdown.

use crate::config::ReuseLevel;
use crate::ids::{InvocationId, LibraryInstanceId, WorkerId};
use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Per-invocation phase breakdown, mirroring Table 5's columns.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseBreakdown {
    /// "Invoc. & Data Transfer": moving the invocation description, its
    /// arguments and any not-yet-cached data to the worker.
    pub transfer: SimDuration,
    /// "Worker Overhead": worker-side setup — unpacking environments,
    /// creating sandboxes, linking files.
    pub worker_overhead: SimDuration,
    /// "Library/Invoc. Overhead": reconstructing state inside the executing
    /// process — deserializing objects or arguments.
    pub library_overhead: SimDuration,
    /// "Exec. Time": running the invocation-distinct computation.
    pub exec: SimDuration,
}

impl PhaseBreakdown {
    pub fn total(&self) -> SimDuration {
        self.transfer + self.worker_overhead + self.library_overhead + self.exec
    }
}

/// One completed invocation (or wrapped task at L1/L2).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct InvocationRecord {
    pub id: InvocationId,
    pub worker: WorkerId,
    /// The library instance that served it (L3 only).
    pub library: Option<LibraryInstanceId>,
    pub level: ReuseLevel,
    /// When the application submitted it.
    pub submitted: SimTime,
    /// When the manager dispatched it to a worker.
    pub dispatched: SimTime,
    /// When it finished and its result reached the manager.
    pub finished: SimTime,
    pub phases: PhaseBreakdown,
    pub success: bool,
}

impl InvocationRecord {
    /// The paper's "invocation run time" (Fig 7 / Table 4): time spent on
    /// the worker, from dispatch arrival to completion — transfer, setup,
    /// state reconstruction and execution, excluding manager queueing.
    pub fn runtime(&self) -> SimDuration {
        self.phases.total()
    }

    /// End-to-end latency including time queued at the manager.
    pub fn latency(&self) -> SimDuration {
        self.finished.since(self.submitted)
    }
}

/// One deployed library instance's lifecycle (Fig 10 / Fig 11).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LibraryRecord {
    pub id: LibraryInstanceId,
    pub worker: WorkerId,
    pub library_name: String,
    pub deployed: SimTime,
    /// `None` if still deployed at the end of the run.
    pub removed: Option<SimTime>,
    /// Number of invocations this instance served — its "share value"
    /// (§4.6: "the number of invocations a library serves").
    pub served: u64,
    /// Cost breakdown of deploying this instance (Table 5's L3-Library
    /// row: transfer, unpack, boot + context setup).
    pub phases: PhaseBreakdown,
}

/// A complete run's telemetry.
///
/// `PartialEq` exists for differential testing: the simulator's dense-layout
/// driver is held bit-identical to the retained reference driver
/// (`vine_sim::reference`) by comparing whole traces.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    pub invocations: Vec<InvocationRecord>,
    pub libraries: Vec<LibraryRecord>,
    /// Total application execution time.
    pub makespan: SimDuration,
}

/// Summary statistics in seconds (Table 4's columns).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Stats {
    pub count: usize,
    pub mean: f64,
    pub std_dev: f64,
    pub min: f64,
    pub max: f64,
}

impl Stats {
    pub fn from_secs(values: impl IntoIterator<Item = f64>) -> Stats {
        let mut count = 0usize;
        let mut sum = 0.0f64;
        let mut sum_sq = 0.0f64;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for v in values {
            count += 1;
            sum += v;
            sum_sq += v * v;
            min = min.min(v);
            max = max.max(v);
        }
        if count == 0 {
            return Stats::default();
        }
        let mean = sum / count as f64;
        // population variance, clamped against tiny negative fp residue
        let var = (sum_sq / count as f64 - mean * mean).max(0.0);
        Stats {
            count,
            mean,
            std_dev: var.sqrt(),
            min,
            max,
        }
    }
}

/// A fixed-width histogram (Fig 7). Values ≥ `hi` land in `overflow`
/// (the paper clips Fig 7 at 40 s "for better visualization").
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    pub lo: f64,
    pub hi: f64,
    pub bin_width: f64,
    pub counts: Vec<u64>,
    pub overflow: u64,
    pub underflow: u64,
}

impl Histogram {
    pub fn new(lo: f64, hi: f64, bins: usize) -> Histogram {
        assert!(hi > lo && bins > 0, "degenerate histogram bounds");
        Histogram {
            lo,
            hi,
            bin_width: (hi - lo) / bins as f64,
            counts: vec![0; bins],
            overflow: 0,
            underflow: 0,
        }
    }

    pub fn add(&mut self, v: f64) {
        if v < self.lo {
            self.underflow += 1;
        } else if v >= self.hi {
            self.overflow += 1;
        } else {
            let idx = ((v - self.lo) / self.bin_width) as usize;
            let idx = idx.min(self.counts.len() - 1); // fp edge guard
            self.counts[idx] += 1;
        }
    }

    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.overflow + self.underflow
    }

    /// The center of the fullest bin — the histogram's mode, used to check
    /// Fig 7's cluster locations (L1 ≈ 12–20 s, L2 ≈ 10–16 s, L3 ≈ 3–7 s).
    pub fn mode_center(&self) -> f64 {
        let (idx, _) = self
            .counts
            .iter()
            .enumerate()
            .max_by_key(|(_, c)| **c)
            .unwrap_or((0, &0));
        self.lo + (idx as f64 + 0.5) * self.bin_width
    }
}

/// A point series for Figs 10 & 11: x = invocations completed, y = metric.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Series {
    pub points: Vec<(u64, f64)>,
}

impl Trace {
    /// Table 4 statistics over invocation run times.
    pub fn runtime_stats(&self) -> Stats {
        Stats::from_secs(
            self.invocations
                .iter()
                .filter(|r| r.success)
                .map(|r| r.runtime().as_secs_f64()),
        )
    }

    /// Fig 7 histogram of invocation run times.
    pub fn runtime_histogram(&self, lo: f64, hi: f64, bins: usize) -> Histogram {
        let mut h = Histogram::new(lo, hi, bins);
        for r in self.invocations.iter().filter(|r| r.success) {
            h.add(r.runtime().as_secs_f64());
        }
        h
    }

    /// Fig 10: number of libraries deployed (and not yet removed) as a
    /// function of invocations completed, sampled every `step` completions.
    pub fn active_libraries_series(&self, step: u64) -> Series {
        let finish_times = self.sorted_finish_times();
        let mut points = Vec::new();
        let mut n = step;
        while n <= finish_times.len() as u64 {
            let t = finish_times[(n - 1) as usize];
            let active = self
                .libraries
                .iter()
                .filter(|l| l.deployed <= t && l.removed.is_none_or(|r| r > t))
                .count();
            points.push((n, active as f64));
            n += step;
        }
        Series { points }
    }

    /// Fig 11: average share value (invocations served per deployed library)
    /// as a function of invocations completed.
    pub fn avg_share_series(&self, step: u64) -> Series {
        let finish_times = self.sorted_finish_times();
        let mut points = Vec::new();
        let mut n = step;
        while n <= finish_times.len() as u64 {
            let t = finish_times[(n - 1) as usize];
            let deployed = self
                .libraries
                .iter()
                .filter(|l| l.deployed <= t)
                .count()
                .max(1);
            // completions up to t, averaged over libraries ever deployed by t
            points.push((n, n as f64 / deployed as f64));
            n += step;
        }
        Series { points }
    }

    fn sorted_finish_times(&self) -> Vec<SimTime> {
        let mut v: Vec<SimTime> = self
            .invocations
            .iter()
            .filter(|r| r.success)
            .map(|r| r.finished)
            .collect();
        v.sort_unstable();
        v
    }

    /// Mean phase breakdown across successful invocations (Table 5 rows).
    pub fn mean_phases(&self) -> PhaseBreakdown {
        let n = self.invocations.iter().filter(|r| r.success).count().max(1) as u64;
        let mut acc = PhaseBreakdown::default();
        for r in self.invocations.iter().filter(|r| r.success) {
            acc.transfer += r.phases.transfer;
            acc.worker_overhead += r.phases.worker_overhead;
            acc.library_overhead += r.phases.library_overhead;
            acc.exec += r.phases.exec;
        }
        acc.transfer = acc.transfer / n;
        acc.worker_overhead = acc.worker_overhead / n;
        acc.library_overhead = acc.library_overhead / n;
        acc.exec = acc.exec / n;
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: u64, start_s: f64, phases: PhaseBreakdown) -> InvocationRecord {
        let dispatched = SimTime::from_secs_f64(start_s);
        InvocationRecord {
            id: InvocationId(id),
            worker: WorkerId(0),
            library: None,
            level: ReuseLevel::L3,
            submitted: SimTime::ZERO,
            dispatched,
            finished: dispatched + phases.total(),
            phases,
            success: true,
        }
    }

    fn phases(exec_s: f64) -> PhaseBreakdown {
        PhaseBreakdown {
            exec: SimDuration::from_secs_f64(exec_s),
            ..Default::default()
        }
    }

    #[test]
    fn stats_basic() {
        let s = Stats::from_secs([1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.std_dev - (1.25f64).sqrt()).abs() < 1e-9);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
    }

    #[test]
    fn stats_empty_is_zeroed() {
        let s = Stats::from_secs(std::iter::empty());
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn histogram_binning_and_overflow() {
        let mut h = Histogram::new(0.0, 40.0, 40);
        h.add(0.5); // bin 0
        h.add(39.99); // bin 39
        h.add(40.0); // overflow
        h.add(-0.1); // underflow
        h.add(12.3); // bin 12
        assert_eq!(h.counts[0], 1);
        assert_eq!(h.counts[39], 1);
        assert_eq!(h.counts[12], 1);
        assert_eq!(h.overflow, 1);
        assert_eq!(h.underflow, 1);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn histogram_mode_center() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for _ in 0..5 {
            h.add(3.2);
        }
        h.add(7.0);
        assert!((h.mode_center() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn runtime_excludes_queueing() {
        let mut r = record(1, 100.0, phases(2.0));
        r.submitted = SimTime::ZERO; // queued 100 s before dispatch
        assert!((r.runtime().as_secs_f64() - 2.0).abs() < 1e-9);
        assert!((r.latency().as_secs_f64() - 102.0).abs() < 1e-9);
    }

    #[test]
    fn trace_stats_skip_failures() {
        let mut t = Trace::default();
        t.invocations.push(record(1, 0.0, phases(1.0)));
        let mut failed = record(2, 0.0, phases(100.0));
        failed.success = false;
        t.invocations.push(failed);
        let s = t.runtime_stats();
        assert_eq!(s.count, 1);
        assert!((s.mean - 1.0).abs() < 1e-9);
    }

    #[test]
    fn library_series_counts_active_only() {
        let mut t = Trace::default();
        for i in 0..4u64 {
            t.invocations.push(record(i, i as f64, phases(0.5)));
        }
        t.libraries.push(LibraryRecord {
            id: LibraryInstanceId(1),
            worker: WorkerId(0),
            library_name: "lib".into(),
            deployed: SimTime::ZERO,
            removed: None,
            served: 4,
            phases: PhaseBreakdown::default(),
        });
        t.libraries.push(LibraryRecord {
            id: LibraryInstanceId(2),
            worker: WorkerId(1),
            library_name: "lib".into(),
            deployed: SimTime::ZERO,
            removed: Some(SimTime::from_secs_f64(1.0)), // gone after 1 s
            served: 0,
            phases: PhaseBreakdown::default(),
        });
        let series = t.active_libraries_series(1);
        assert_eq!(series.points.len(), 4);
        // first completion at 0.5 s: both active; later ones: only lib 1
        assert_eq!(series.points[0].1, 2.0);
        assert_eq!(series.points[3].1, 1.0);
    }

    #[test]
    fn share_series_grows_linearly_with_fixed_libraries() {
        let mut t = Trace::default();
        for i in 0..10u64 {
            t.invocations.push(record(i, i as f64, phases(0.5)));
        }
        t.libraries.push(LibraryRecord {
            id: LibraryInstanceId(1),
            worker: WorkerId(0),
            library_name: "lib".into(),
            deployed: SimTime::ZERO,
            removed: None,
            served: 10,
            phases: PhaseBreakdown::default(),
        });
        let series = t.avg_share_series(2);
        // with one library, avg share value == completions: 2, 4, 6, 8, 10
        let ys: Vec<f64> = series.points.iter().map(|p| p.1).collect();
        assert_eq!(ys, vec![2.0, 4.0, 6.0, 8.0, 10.0]);
    }

    #[test]
    fn mean_phases_averages() {
        let mut t = Trace::default();
        t.invocations.push(record(1, 0.0, phases(2.0)));
        t.invocations.push(record(2, 0.0, phases(4.0)));
        let m = t.mean_phases();
        assert!((m.exec.as_secs_f64() - 3.0).abs() < 1e-9);
    }
}
