//! The two execution abstractions the paper contrasts (Table 1):
//!
//! | | State | Worker requirement | Execution requirement |
//! |---|---|---|---|
//! | Task | Stateless | None | Code + Data + Args |
//! | Invocation | Stateful | Code + Data | Args |
//!
//! A [`TaskSpec`] is self-contained: it carries (references to) everything it
//! needs and can run on any worker. A [`FunctionCall`] is an invocation: it
//! names a (library, function) pair and ships only its arguments; it can run
//! only on a worker that hosts the library's context.

use crate::context::{CodeArtifact, FileRef};
use crate::ids::{InvocationId, TaskId};
use crate::resources::Resources;
use serde::{Deserialize, Serialize};

/// How a library executes an invocation (§3.4 step 4).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExecMode {
    /// The library runs the invocation synchronously inside its own process,
    /// sharing its memory space directly.
    Direct,
    /// The library forks; the child inherits the context copy-on-write,
    /// executes, writes its result, and exits. Lets many invocations run
    /// concurrently against one shared context.
    Fork,
}

/// The computational shape of a unit of work, used by the simulator to turn
/// work into time on a concrete machine. The live runtime ignores this and
/// runs real code.
///
/// The split between `exec_gflop` and `context_gflop` is the paper's central
/// observation (§2.1.2): a function's code divides into "one [part] that sets
/// up a reusable context and one that invokes computations with the given
/// arguments". Under L1/L2 every execution pays both; under L3 the context
/// part is paid once per library.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct WorkProfile {
    /// Compute in the invocation-distinct part (GFLOP).
    pub exec_gflop: f64,
    /// Compute in the reusable context-setup part — deserializing inputs,
    /// building models, preparing state (GFLOP).
    pub context_gflop: f64,
    /// Bytes the context setup reads from materialized input files (e.g.
    /// loading model parameters from disk into memory).
    pub context_read_bytes: u64,
    /// Bytes of result produced.
    pub output_bytes: u64,
    /// Metadata operations issued against the shared filesystem per
    /// execution when inputs are shared-FS-sourced (L1): the interpreter's
    /// import storm. Ignored at L2/L3.
    pub sharedfs_ops: f64,
    /// Bytes read from the shared filesystem per execution at L1, beyond
    /// `context_read_bytes` (package files, shared objects).
    pub sharedfs_read_bytes: u64,
    /// Multiplier on execution time at L1 for workloads whose *running*
    /// computation also does I/O against the shared filesystem (e.g. PM7
    /// scratch files); 1.0 = no effect.
    pub l1_exec_slowdown: f64,
}

impl WorkProfile {
    pub const fn zero() -> Self {
        WorkProfile {
            exec_gflop: 0.0,
            context_gflop: 0.0,
            context_read_bytes: 0,
            output_bytes: 0,
            sharedfs_ops: 0.0,
            sharedfs_read_bytes: 0,
            l1_exec_slowdown: 1.0,
        }
    }
}

impl Default for WorkProfile {
    fn default() -> Self {
        Self::zero()
    }
}

/// A stateless task (paper Table 1). For function-centric workloads run at
/// reuse levels L1/L2, each invocation is *wrapped* as one of these: a
/// generic runner plus the serialized function and arguments.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TaskSpec {
    pub id: TaskId,
    pub name: String,
    /// Code the wrapper must reconstruct before executing (empty for
    /// non-function tasks).
    pub code: Vec<CodeArtifact>,
    /// Function to call after reconstruction, if this task wraps an
    /// invocation.
    pub function: Option<String>,
    /// Serialized arguments.
    pub args_blob: Vec<u8>,
    /// Input files the task needs materialized in its sandbox.
    pub inputs: Vec<FileRef>,
    pub resources: Resources,
    pub profile: WorkProfile,
}

impl TaskSpec {
    pub fn new(id: TaskId, name: impl Into<String>) -> Self {
        TaskSpec {
            id,
            name: name.into(),
            code: Vec::new(),
            function: None,
            args_blob: Vec::new(),
            inputs: Vec::new(),
            resources: Resources::new(1, 1024, 1024),
            profile: WorkProfile::zero(),
        }
    }
}

/// A function invocation (paper Table 1, and `vine.FunctionCall` in Fig 5):
/// addressed to a named library and function, carrying only arguments.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FunctionCall {
    pub id: InvocationId,
    pub library: String,
    pub function: String,
    /// Serialized arguments — the only payload an invocation ships (§2.1.4).
    pub args_blob: Vec<u8>,
    pub resources: Resources,
    /// Overrides the library's default execution mode if set.
    pub exec_mode: Option<ExecMode>,
    pub profile: WorkProfile,
}

impl FunctionCall {
    pub fn new(
        id: InvocationId,
        library: impl Into<String>,
        function: impl Into<String>,
        args_blob: Vec<u8>,
    ) -> Self {
        FunctionCall {
            id,
            library: library.into(),
            function: function.into(),
            args_blob,
            resources: Resources::new(1, 1024, 1024),
            exec_mode: None,
            profile: WorkProfile::zero(),
        }
    }
}

/// Anything the manager can schedule.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum WorkUnit {
    Task(TaskSpec),
    Call(FunctionCall),
}

impl WorkUnit {
    pub fn resources(&self) -> Resources {
        match self {
            WorkUnit::Task(t) => t.resources,
            WorkUnit::Call(c) => c.resources,
        }
    }

    pub fn display_id(&self) -> String {
        match self {
            WorkUnit::Task(t) => t.id.to_string(),
            WorkUnit::Call(c) => c.id.to_string(),
        }
    }

    /// The identifier this unit's [`Outcome`] will carry.
    pub fn id(&self) -> UnitId {
        match self {
            WorkUnit::Task(t) => UnitId::Task(t.id),
            WorkUnit::Call(c) => UnitId::Call(c.id),
        }
    }
}

/// The identifier of a completed unit, carried on results.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum UnitId {
    Task(TaskId),
    Call(InvocationId),
}

/// A finished unit's result as reported to the application.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Outcome {
    pub unit: UnitId,
    /// Serialized return value (empty on failure).
    pub result_blob: Vec<u8>,
    pub success: bool,
    /// Human-readable failure reason, if any.
    pub error: Option<String>,
}

impl Outcome {
    pub fn ok(unit: UnitId, result_blob: Vec<u8>) -> Self {
        Outcome {
            unit,
            result_blob,
            success: true,
            error: None,
        }
    }

    pub fn failed(unit: UnitId, error: impl Into<String>) -> Self {
        Outcome {
            unit,
            result_blob: Vec::new(),
            success: false,
            error: Some(error.into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_and_call_defaults() {
        let t = TaskSpec::new(TaskId(1), "wrap");
        assert!(t.code.is_empty());
        assert!(t.function.is_none());
        let c = FunctionCall::new(InvocationId(1), "lib", "f", vec![1, 2]);
        assert_eq!(c.library, "lib");
        assert_eq!(c.args_blob, vec![1, 2]);
        assert!(c.exec_mode.is_none());
    }

    #[test]
    fn work_unit_accessors() {
        let mut t = TaskSpec::new(TaskId(3), "x");
        t.resources = Resources::new(2, 64, 64);
        let u = WorkUnit::Task(t);
        assert_eq!(u.resources(), Resources::new(2, 64, 64));
        assert_eq!(u.display_id(), "t3");

        let c = FunctionCall::new(InvocationId(9), "lib", "f", vec![]);
        let u = WorkUnit::Call(c);
        assert_eq!(u.display_id(), "i9");
    }

    #[test]
    fn outcome_constructors() {
        let ok = Outcome::ok(UnitId::Task(TaskId(1)), vec![7]);
        assert!(ok.success);
        assert!(ok.error.is_none());
        let bad = Outcome::failed(UnitId::Call(InvocationId(2)), "worker died");
        assert!(!bad.success);
        assert_eq!(bad.error.as_deref(), Some("worker died"));
        assert!(bad.result_blob.is_empty());
    }
}
