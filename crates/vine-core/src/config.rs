//! The calibrated cost model.
//!
//! Every constant here is cross-referenced to a number in the paper
//! (Tables 2–5, §4.2). The discrete-event simulator composes these
//! *component-level* costs; the paper's *end-to-end* numbers (e.g. Figure
//! 6a's 7,485 s → 414 s) are emergent, not hard-coded. The calibration
//! reasoning:
//!
//! * **Manager throughput is the binding constraint for short invocations.**
//!   Fig 6a L1 = 7,485 s for 100k tasks → 74.9 ms of manager time per task;
//!   L2 = ~3,362 s → 33.6 ms; L3 = 414 s ≈ 100k × 2.52 ms (Table 2's
//!   per-invocation overhead) + worker/library startup + drain tail.
//!   Cross-check via Little's law: at L1, dispatch rate 13.4 tasks/s ×
//!   mean runtime 21.59 s (Table 4) ⇒ ~288 concurrent tasks, i.e. only 12%
//!   of the 2,400 available slots are ever busy — exactly why the paper
//!   finds extra workers don't help (Fig 9) and why the L3 library count
//!   plateaus near ~2,000 ≈ utilization × slots (Fig 10).
//! * **Per-task manager cost grows with the number of tasks in the system**
//!   (the manager's internal bookkeeping iterates per-task structures), so
//!   dispatch cost is `base + per_10k_pending × pending/10k`. This
//!   reconciles 74.9 ms/task at 100k-task scale with the much cheaper
//!   dispatch implied by Fig 8's 10k-task runs.
//! * **Worker-side per-invocation time** comes from Table 5's breakdown:
//!   ~0.33 s argument/input deserialization (L2), ~15.4 s to unpack the
//!   3.1 GB environment (≈ 200 MB/s), ~2.7 s of library context setup, and
//!   3.08 s of execution for 16 inferences on the reference machine.
//! * **Contention** (shared-FS aggregate bandwidth and IOPS, local SSD
//!   bandwidth, per-machine GFLOPS from Table 3) produces Table 4's means
//!   and spreads.

use crate::time::SimDuration;
use serde::{Deserialize, Serialize};

/// The paper's three levels of context reuse (§4.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ReuseLevel {
    /// No context reuse: invocations run as stateless tasks pulling
    /// everything from the shared filesystem each time.
    L1,
    /// Context reuse on disk: data and dependencies are cached on each
    /// worker's local disk after first use (data-to-invocation binding).
    L2,
    /// Context reuse on disk and memory: a library process additionally
    /// retains loaded state in memory between invocations
    /// (context-to-invocation binding).
    L3,
}

impl ReuseLevel {
    pub const ALL: [ReuseLevel; 3] = [ReuseLevel::L1, ReuseLevel::L2, ReuseLevel::L3];

    pub fn name(self) -> &'static str {
        match self {
            ReuseLevel::L1 => "L1",
            ReuseLevel::L2 => "L2",
            ReuseLevel::L3 => "L3",
        }
    }
}

impl std::fmt::Display for ReuseLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Component-level timing constants. See module docs for calibration.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    // ---- network ----
    /// Per-machine NIC bandwidth: 10 Gb/s Ethernet (§4.2).
    pub nic_bytes_per_sec: f64,
    /// Loopback bandwidth for manager/worker co-located runs (Table 5 setup:
    /// "both the manager and worker on the same machine"). Calibrated so the
    /// 572 MB environment + ~200 MB model transfer in ≈ 1.0 s (Table 5,
    /// L2-Cold "Invoc. & Data Transfer" = 1.004 s).
    pub loopback_bytes_per_sec: f64,
    /// One-way LAN message latency.
    pub net_latency: SimDuration,

    // ---- shared filesystem (Panasas ActiveStor 16, §4.2) ----
    /// Aggregate read bandwidth: "up to 84 Gb/s read bandwidth".
    pub sharedfs_bytes_per_sec: f64,
    /// Aggregate read IOPS: "94,000 read IOPS".
    pub sharedfs_iops: f64,
    /// Per-client shared-FS streaming rate for import-storm access
    /// patterns: many small scattered reads are latency-bound, not
    /// bandwidth-bound, so one client sustains far less than its NIC.
    /// 362 MB of shared reads at 36 MB/s ≈ 10 s of Table 4's 21.59 s L1
    /// mean; the aggregate saturates at ~291 such clients — right where
    /// the L1 run's ~285 concurrent tasks sit, which is what makes L1's
    /// tail explode (max 289.72 s).
    pub sharedfs_client_bytes_per_sec: f64,
    /// Per-client metadata-op rate (serial round trips ≈ 3 ms each).
    pub sharedfs_client_iops: f64,
    // ---- local disk (SATA 6 Gb/s SSD, §4.2) ----
    /// Effective aggregate read rate under the concurrent access pattern
    /// of 16 invocations streaming model parameters — SATA SSDs degrade
    /// well below their ~550 MB/s sequential rating when interleaved.
    pub disk_bytes_per_sec: f64,

    // ---- manager costs ----
    /// Manager-side cost to dispatch one stateless task whose inputs are not
    /// yet known to worker caches (L1): task description, file bookkeeping,
    /// result processing.
    pub mgr_task_dispatch_l1: SimDuration,
    /// Same, when inputs are already cached on the target worker (L2):
    /// smaller descriptions, no stage-in directives.
    pub mgr_task_dispatch_l2: SimDuration,
    /// Additional manager cost per uncached-task dispatch per 10,000 units
    /// pending in the manager's tables (bookkeeping scans grow with
    /// workload size): L1's 33 ms base reaches Fig 6a's effective
    /// 74.9 ms/task at the 100k run's ~50k average pending.
    pub mgr_dispatch_per_10k_pending: SimDuration,
    /// Same scan term for cached-input tasks (smaller per-task structures):
    /// L2's 15 ms base reaches the effective 33.6 ms/task at 100k scale.
    pub mgr_task_l2_per_10k_pending: SimDuration,
    /// Manager-side cost to dispatch one function invocation to an installed
    /// library and process its result: Table 2's 2.52 ms per-invocation
    /// overhead.
    pub mgr_call_dispatch: SimDuration,
    /// Scan term for invocation dispatch — invocations keep almost no
    /// per-unit manager state, so the coefficient is ~40× smaller than
    /// L1's; it is what separates Fig 6a's 414 s from a flat 2.52 ms × 100k
    /// = 252 s.
    pub mgr_call_per_10k_pending: SimDuration,
    /// Manager-side cost to process a library installation.
    pub mgr_library_install: SimDuration,

    // ---- worker costs ----
    /// Time for a fresh worker process to start and report ready: Table 2's
    /// ~20 s per-worker overhead (both task and invocation modes pay it).
    pub worker_startup: SimDuration,
    /// Unpack rate for packed environments: 3.1 GB unpacks in ≈ 15.4 s
    /// (Table 5, worker overhead of L2-Cold / L3-Library) ⇒ ≈ 200 MB/s.
    pub env_unpack_bytes_per_sec: f64,
    /// Per-task wrapper overhead at L1/L2: fork/exec of the generic Python
    /// runner plus interpreter boot. With Table 2's trivial function this
    /// plus manager dispatch gives the observed 0.19 s per-task overhead.
    /// Counted in the "Library/Invoc. Overhead" column: together with
    /// `invocation_deserialize` it reproduces Table 5's 0.327 s.
    pub task_wrapper_overhead: SimDuration,
    /// Creating a task sandbox and linking its input files (§3.4 step 3);
    /// Table 5's L2-Hot worker overhead (1.18e-3 s).
    pub sandbox_setup: SimDuration,
    /// Creating the lighter invocation sandbox at L3 (arguments only);
    /// with `invocation_handoff` this is Table 5's L3-Invoc worker
    /// overhead (2.75e-4 s).
    pub call_sandbox_setup: SimDuration,
    /// Worker-side handoff of an invocation to a library and result
    /// notification (§3.4 steps 3–4); the non-manager share of Table 2's
    /// 2.52 ms.
    pub invocation_handoff: SimDuration,
    /// `fork(2)` of the library for ExecMode::Fork.
    pub fork_overhead: SimDuration,

    // ---- invocation / library process costs ----
    /// Deserializing per-invocation objects from input files at L1/L2.
    /// `task_wrapper_overhead + invocation_deserialize` reproduces Table
    /// 5's 0.327 s "Library/Invoc. Overhead" (the wrapper's interpreter
    /// boot happens inside the invocation process).
    pub invocation_deserialize: SimDuration,
    /// Deserializing bare arguments at L3: Table 5's 5.14e-4 s.
    pub call_args_deserialize: SimDuration,
    /// Library interpreter boot before running context setup (part of
    /// Table 5's L3-Library 2.729 s overhead, the rest is the modeled
    /// context setup work itself).
    pub library_boot: SimDuration,

    // ---- machine model ----
    /// Reference per-core GFLOPS against which `WorkProfile` compute is
    /// expressed (group 2's EPYC 7543 rating from Table 3).
    pub reference_gflops: f64,
    /// Multiplicative slowdown when all of a worker's invocation slots are
    /// busy (cache/memory-bandwidth interference at full occupancy);
    /// interpolated linearly with occupancy.
    pub full_occupancy_slowdown: f64,
}

impl CostModel {
    /// Constants calibrated against the paper's cluster (§4.2, Tables 2–5).
    pub fn paper() -> Self {
        CostModel {
            nic_bytes_per_sec: 1.25e9,     // 10 Gb/s
            loopback_bytes_per_sec: 8.0e8, // see field docs
            net_latency: SimDuration::from_micros(200),

            sharedfs_bytes_per_sec: 10.5e9, // 84 Gb/s
            sharedfs_iops: 94_000.0,
            sharedfs_client_bytes_per_sec: 36.0e6,
            sharedfs_client_iops: 330.0,

            disk_bytes_per_sec: 3.5e8,

            mgr_task_dispatch_l1: SimDuration::from_micros(33_000),
            mgr_task_dispatch_l2: SimDuration::from_micros(15_000),
            mgr_dispatch_per_10k_pending: SimDuration::from_micros(8_400),
            mgr_task_l2_per_10k_pending: SimDuration::from_micros(3_700),
            mgr_call_dispatch: SimDuration::from_micros(2_300),
            mgr_call_per_10k_pending: SimDuration::from_micros(230),
            mgr_library_install: SimDuration::from_micros(5_000),

            worker_startup: SimDuration::from_secs_f64(19.9),
            env_unpack_bytes_per_sec: 2.0e8,
            task_wrapper_overhead: SimDuration::from_micros(147_000),
            sandbox_setup: SimDuration::from_micros(1_100),
            call_sandbox_setup: SimDuration::from_micros(60),
            invocation_handoff: SimDuration::from_micros(215),
            fork_overhead: SimDuration::from_micros(5_000),

            invocation_deserialize: SimDuration::from_micros(180_000),
            call_args_deserialize: SimDuration::from_micros(514),
            library_boot: SimDuration::from_secs_f64(0.45),

            reference_gflops: 5.4,
            full_occupancy_slowdown: 1.35,
        }
    }

    /// Manager dispatch cost for a stateless task, given whether its inputs
    /// are warm in worker caches and the number of units pending in the
    /// manager's tables.
    pub fn task_dispatch_cost(&self, inputs_cached: bool, pending: usize) -> SimDuration {
        let (base, per_10k) = if inputs_cached {
            (self.mgr_task_dispatch_l2, self.mgr_task_l2_per_10k_pending)
        } else {
            (self.mgr_task_dispatch_l1, self.mgr_dispatch_per_10k_pending)
        };
        base + SimDuration((per_10k.0 as u128 * pending as u128 / 10_000) as u64)
    }

    /// Manager dispatch cost for a function invocation.
    pub fn call_dispatch_cost(&self, pending: usize) -> SimDuration {
        self.mgr_call_dispatch
            + SimDuration(
                (self.mgr_call_per_10k_pending.0 as u128 * pending as u128 / 10_000) as u64,
            )
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reuse_level_display() {
        assert_eq!(ReuseLevel::L1.to_string(), "L1");
        assert_eq!(ReuseLevel::ALL.len(), 3);
        assert!(ReuseLevel::L1 < ReuseLevel::L3);
    }

    #[test]
    fn env_unpack_matches_table5_worker_overhead() {
        // 3.1 GB at the calibrated unpack rate ≈ 15.4 s (Table 5: 15.435 s)
        let cm = CostModel::paper();
        let secs = 3.1e9 / cm.env_unpack_bytes_per_sec;
        assert!((secs - 15.4).abs() < 0.2, "unpack {secs}");
    }

    #[test]
    fn call_overhead_matches_table2() {
        // manager dispatch + worker handoff ≈ 2.52 ms (Table 2, Remote
        // Invocation per-invocation overhead)
        let cm = CostModel::paper();
        let total = cm.mgr_call_dispatch + cm.invocation_handoff;
        let ms = total.as_secs_f64() * 1e3;
        assert!((ms - 2.52).abs() < 0.1, "per-call overhead {ms} ms");
    }

    #[test]
    fn task_dispatch_scales_with_pending() {
        let cm = CostModel::paper();
        let cold_small = cm.task_dispatch_cost(false, 0);
        let cold_big = cm.task_dispatch_cost(false, 50_000);
        assert_eq!(cold_small, cm.mgr_task_dispatch_l1);
        // at 50k pending the scan term adds 5 × 8.4 ms = 42 ms
        assert_eq!(
            cold_big,
            cm.mgr_task_dispatch_l1 + SimDuration::from_micros(42_000)
        );
        // warm-cache dispatch is strictly cheaper
        assert!(cm.task_dispatch_cost(true, 10_000) < cm.task_dispatch_cost(false, 10_000));
    }

    #[test]
    fn fig6a_l1_order_of_magnitude() {
        // At steady state with ~50k average pending, L1 dispatch ≈ 75 ms,
        // so 100k tasks take ≈ 7,500 s of manager time — Fig 6a's 7,485 s.
        let cm = CostModel::paper();
        let per_task = cm.task_dispatch_cost(false, 50_000).as_secs_f64();
        let total = per_task * 100_000.0;
        assert!((7_000.0..8_000.0).contains(&total), "L1 total {total}");
    }

    #[test]
    fn fig6a_l3_order_of_magnitude() {
        // 100k × 2.52 ms ≈ 252 s of manager time; with ~20 s worker startup,
        // ~18 s library setup and the drain tail the end-to-end run lands
        // near the paper's 414 s (validated end-to-end in vine-sim tests).
        let cm = CostModel::paper();
        let mgr = (cm.mgr_call_dispatch + cm.invocation_handoff).as_secs_f64() * 100_000.0;
        assert!((230.0..280.0).contains(&mgr), "L3 manager time {mgr}");
    }
}
