//! Resource vectors: cores, memory, disk, and GPU slots.
//!
//! The paper's resource model (§3.5.2): a *library* owns "an arbitrary but
//! fixed allocation of resources on a worker node in terms of cores, memory,
//! and disk", plus a logical resource called *invocation slots*. Workers
//! account for what libraries and tasks consume and report back to the
//! manager for scheduling. This module provides the vector arithmetic that
//! accounting is built on.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign};

/// A resource allocation or capacity.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Resources {
    pub cores: u32,
    pub memory_mb: u64,
    pub disk_mb: u64,
    pub gpus: u32,
}

impl Resources {
    pub const ZERO: Resources = Resources {
        cores: 0,
        memory_mb: 0,
        disk_mb: 0,
        gpus: 0,
    };

    pub const fn new(cores: u32, memory_mb: u64, disk_mb: u64) -> Self {
        Resources {
            cores,
            memory_mb,
            disk_mb,
            gpus: 0,
        }
    }

    pub const fn with_gpus(mut self, gpus: u32) -> Self {
        self.gpus = gpus;
        self
    }

    /// The paper's evaluation worker: 32 cores, 64 GB memory, 64 GB disk
    /// (§4.2 "Each worker is allocated 32 cores and 64GBs of memory and
    /// disk").
    pub const fn paper_worker() -> Self {
        Resources::new(32, 64 * 1024, 64 * 1024)
    }

    /// The paper's LNNI invocation allocation: 2 cores, 4 GB memory, 4 GB
    /// disk — 16 concurrent invocations per worker (§4.2).
    pub const fn lnni_invocation() -> Self {
        Resources::new(2, 4 * 1024, 4 * 1024)
    }

    /// The paper's ExaMol invocation allocation: 4 cores, 8 GB memory, 8 GB
    /// disk — 8 concurrent invocations per worker (§4.2).
    pub const fn examol_invocation() -> Self {
        Resources::new(4, 8 * 1024, 8 * 1024)
    }

    /// True if a request of size `other` fits inside this remaining capacity.
    pub fn can_fit(&self, other: &Resources) -> bool {
        self.cores >= other.cores
            && self.memory_mb >= other.memory_mb
            && self.disk_mb >= other.disk_mb
            && self.gpus >= other.gpus
    }

    /// Subtract an allocation, returning `None` if any dimension would go
    /// negative. Used by worker-side accounting, where over-subscription is
    /// a logic error that must surface, not wrap.
    pub fn checked_sub(&self, other: &Resources) -> Option<Resources> {
        Some(Resources {
            cores: self.cores.checked_sub(other.cores)?,
            memory_mb: self.memory_mb.checked_sub(other.memory_mb)?,
            disk_mb: self.disk_mb.checked_sub(other.disk_mb)?,
            gpus: self.gpus.checked_sub(other.gpus)?,
        })
    }

    /// How many non-overlapping copies of `unit` fit in this capacity —
    /// the slot count a whole-worker library gets for a given per-invocation
    /// allocation (e.g. 32-core worker / 2-core LNNI invocation = 16 slots).
    pub fn divide_by(&self, unit: &Resources) -> u32 {
        let mut n = u32::MAX;
        if let Some(q) = self.cores.checked_div(unit.cores) {
            n = n.min(q);
        }
        if let Some(q) = self.memory_mb.checked_div(unit.memory_mb) {
            n = n.min(q as u32);
        }
        if let Some(q) = self.disk_mb.checked_div(unit.disk_mb) {
            n = n.min(q as u32);
        }
        if let Some(q) = self.gpus.checked_div(unit.gpus) {
            n = n.min(q);
        }
        if n == u32::MAX {
            // zero-sized unit: infinitely many fit; callers treat 0-resource
            // requests as "unconstrained" and should not divide by them.
            0
        } else {
            n
        }
    }

    pub fn is_zero(&self) -> bool {
        *self == Resources::ZERO
    }

    /// Component-wise max, used when sizing a library to the largest of its
    /// functions' requests.
    pub fn max(&self, other: &Resources) -> Resources {
        Resources {
            cores: self.cores.max(other.cores),
            memory_mb: self.memory_mb.max(other.memory_mb),
            disk_mb: self.disk_mb.max(other.disk_mb),
            gpus: self.gpus.max(other.gpus),
        }
    }
}

impl Add for Resources {
    type Output = Resources;
    fn add(self, other: Resources) -> Resources {
        Resources {
            cores: self.cores + other.cores,
            memory_mb: self.memory_mb + other.memory_mb,
            disk_mb: self.disk_mb + other.disk_mb,
            gpus: self.gpus + other.gpus,
        }
    }
}

impl AddAssign for Resources {
    fn add_assign(&mut self, other: Resources) {
        *self = *self + other;
    }
}

impl fmt::Debug for Resources {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}c/{}MB mem/{}MB disk",
            self.cores, self.memory_mb, self.disk_mb
        )?;
        if self.gpus > 0 {
            write!(f, "/{} gpu", self.gpus)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_worker_fits_sixteen_lnni_invocations() {
        let worker = Resources::paper_worker();
        let invoc = Resources::lnni_invocation();
        assert_eq!(worker.divide_by(&invoc), 16);
    }

    #[test]
    fn paper_worker_fits_eight_examol_invocations() {
        let worker = Resources::paper_worker();
        let invoc = Resources::examol_invocation();
        assert_eq!(worker.divide_by(&invoc), 8);
    }

    #[test]
    fn can_fit_is_componentwise() {
        let cap = Resources::new(4, 100, 100);
        assert!(cap.can_fit(&Resources::new(4, 100, 100)));
        assert!(!cap.can_fit(&Resources::new(5, 1, 1)));
        assert!(!cap.can_fit(&Resources::new(1, 101, 1)));
        assert!(!cap.can_fit(&Resources::new(1, 1, 101)));
        assert!(!cap.can_fit(&Resources::new(1, 1, 1).with_gpus(1)));
    }

    #[test]
    fn checked_sub_detects_oversubscription() {
        let cap = Resources::new(4, 100, 100);
        assert_eq!(
            cap.checked_sub(&Resources::new(4, 100, 100)),
            Some(Resources::ZERO)
        );
        assert_eq!(cap.checked_sub(&Resources::new(5, 0, 0)), None);
    }

    #[test]
    fn add_then_sub_roundtrips() {
        let a = Resources::new(2, 4096, 4096);
        let b = Resources::new(1, 1024, 512).with_gpus(1);
        let sum = a + b;
        assert_eq!(sum.checked_sub(&b), Some(a));
    }

    #[test]
    fn divide_by_memory_bound() {
        // memory is the binding constraint here, not cores
        let cap = Resources::new(32, 8 * 1024, 64 * 1024);
        let unit = Resources::new(1, 4 * 1024, 1024);
        assert_eq!(cap.divide_by(&unit), 2);
    }

    #[test]
    fn divide_by_zero_unit_is_zero() {
        assert_eq!(Resources::paper_worker().divide_by(&Resources::ZERO), 0);
    }

    #[test]
    fn max_is_componentwise() {
        let a = Resources::new(2, 100, 5);
        let b = Resources::new(1, 200, 3).with_gpus(2);
        let m = a.max(&b);
        assert_eq!(m, Resources::new(2, 200, 5).with_gpus(2));
    }
}
