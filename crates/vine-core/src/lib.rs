//! # vine-core
//!
//! Foundational types for `vine-rs`, a Rust reproduction of the HPDC '24
//! paper *"Accelerating Function-Centric Applications by Discovering,
//! Distributing, and Retaining Reusable Context in Workflow Systems"*
//! (Phung, Thomas, Ward, Chard, Thain).
//!
//! This crate holds everything the rest of the workspace agrees on:
//!
//! * [`ids`] — typed identifiers and content-addressed hashes. All
//!   transferable data in the system is immutable and named by the hash of
//!   its content, which is what makes peer-to-peer distribution safe
//!   (paper §2.2.2: "any transferable data in the system has to be uniquely
//!   identified and read-only, otherwise data corruption can silently
//!   happen").
//! * [`resources`] — core/memory/disk/gpu allocations and their arithmetic.
//! * [`time`] — simulated time as integer microseconds.
//! * [`task`] — the two execution abstractions the paper contrasts
//!   (Table 1): a stateless *task* that ships code + data + args, and a
//!   stateful *invocation* that ships only args to a worker holding the
//!   function's context.
//! * [`context`] — the four discoverable elements of a function context
//!   (paper §2.2.1): function code, software dependencies, input data, and
//!   arbitrary environment setup.
//! * [`config`] — the calibrated cost model used by the discrete-event
//!   simulator, with every constant cross-referenced to a paper table.
//! * [`trace`] — execution telemetry: per-invocation phase breakdowns,
//!   summary statistics and histograms matching the paper's evaluation
//!   artifacts (Tables 4 & 5, Figures 7, 10, 11).
//! * [`error`] — the shared error type.

pub mod config;
pub mod context;
pub mod error;
pub mod ids;
pub mod resources;
pub mod task;
pub mod time;
pub mod trace;

pub use config::{CostModel, ReuseLevel};
pub use context::{ContextSpec, FileRef, LibrarySpec, SetupSpec};
pub use error::{Result, VineError};
pub use ids::{ContentHash, FileId, InvocationId, LibraryInstanceId, ShardId, TaskId, WorkerId};
pub use resources::Resources;
pub use task::{ExecMode, FunctionCall, TaskSpec, WorkUnit};
pub use time::{SimDuration, SimTime};
