//! Typed identifiers and content-addressed naming.
//!
//! The paper requires that "any transferable data in the system has to be
//! uniquely identified and read-only" (§2.2.2) so workers can exchange files
//! peer-to-peer without coordination. We name every file by a 128-bit digest
//! of its content, computed with two independent FNV-1a passes. FNV is not
//! cryptographic, but the threat model here is *accidental* collision between
//! honest datasets, for which 128 bits of a well-mixed hash is ample — and it
//! keeps the workspace free of external crypto dependencies.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A 128-bit content digest. The canonical name of every immutable file.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ContentHash(pub u128);

const FNV64_OFFSET: u64 = 0xcbf29ce484222325;
const FNV64_PRIME: u64 = 0x100000001b3;
/// Second-lane offset: FNV offset XOR a fixed constant so the two lanes are
/// decorrelated even for short inputs.
const FNV64_OFFSET_B: u64 = FNV64_OFFSET ^ 0x9e3779b97f4a7c15;

/// One FNV-1a pass with a caller-chosen offset basis, finished with a
/// splitmix64-style avalanche so short inputs still diffuse into all bits.
fn fnv1a64(offset: u64, bytes: &[u8]) -> u64 {
    let mut h = offset;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV64_PRIME);
    }
    // splitmix64 finalizer
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58476d1ce4e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d049bb133111eb);
    h ^ (h >> 31)
}

impl ContentHash {
    /// Hash raw bytes.
    pub fn of_bytes(bytes: &[u8]) -> Self {
        let hi = fnv1a64(FNV64_OFFSET, bytes) as u128;
        let lo = fnv1a64(FNV64_OFFSET_B, bytes) as u128;
        ContentHash((hi << 64) | lo)
    }

    /// Hash a UTF-8 string.
    pub fn of_str(s: &str) -> Self {
        Self::of_bytes(s.as_bytes())
    }

    /// Combine two hashes (order-sensitive), e.g. for a file derived from two
    /// sources or a manifest of parts.
    pub fn combine(self, other: ContentHash) -> ContentHash {
        let mut buf = [0u8; 32];
        buf[..16].copy_from_slice(&self.0.to_le_bytes());
        buf[16..].copy_from_slice(&other.0.to_le_bytes());
        ContentHash::of_bytes(&buf)
    }

    /// First 16 hex characters, used as a short human-readable cache key
    /// (analogous to TaskVine naming cached files by content hash).
    pub fn short(&self) -> String {
        format!("{:016x}", (self.0 >> 64) as u64)
    }
}

impl fmt::Debug for ContentHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ContentHash({:032x})", self.0)
    }
}

impl fmt::Display for ContentHash {
    /// Renders the 128-bit digest as 32 lowercase hex digits.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

macro_rules! typed_id {
    ($(#[$meta:meta])* $name:ident, $inner:ty, $prefix:literal) => {
        $(#[$meta])*
        #[derive(
            Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
        )]
        pub struct $name(pub $inner);

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$inner> for $name {
            fn from(v: $inner) -> Self {
                $name(v)
            }
        }
    };
}

typed_id!(
    /// A worker node connected to the manager.
    WorkerId, u32, "w");
typed_id!(
    /// A submitted stateless task (paper Table 1, row "Task").
    TaskId, u64, "t");
typed_id!(
    /// A submitted function invocation (paper Table 1, row "Invocation").
    InvocationId, u64, "i");
typed_id!(
    /// One deployed instance of a library on one worker. The paper's Figure
    /// 10 counts these ("number of deployed libraries").
    LibraryInstanceId, u64, "L");
typed_id!(
    /// An immutable file known to the manager's file table. Distinct from
    /// [`ContentHash`]: the id is the handle, the hash is the name used for
    /// cache lookups and peer transfers.
    FileId, u64, "f");
typed_id!(
    /// One scheduling shard in a federated deployment: an embedded
    /// `vine_manager::Shard` owning a partition of the workers, behind
    /// the routing front-end.
    ShardId, u32, "s");

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_deterministic() {
        assert_eq!(ContentHash::of_str("hello"), ContentHash::of_str("hello"));
        assert_eq!(ContentHash::of_bytes(b"abc"), ContentHash::of_bytes(b"abc"));
    }

    #[test]
    fn hash_distinguishes_content() {
        assert_ne!(ContentHash::of_str("hello"), ContentHash::of_str("hellp"));
        assert_ne!(ContentHash::of_str(""), ContentHash::of_str("\0"));
        // short inputs must not collide lane-wise
        assert_ne!(ContentHash::of_bytes(b"a"), ContentHash::of_bytes(b"b"));
    }

    #[test]
    fn empty_input_has_full_width_digest() {
        let h = ContentHash::of_bytes(&[]);
        // both 64-bit lanes populated
        assert_ne!((h.0 >> 64) as u64, 0);
        assert_ne!(h.0 as u64, 0);
        assert_ne!((h.0 >> 64) as u64, h.0 as u64);
    }

    #[test]
    fn combine_is_order_sensitive() {
        let a = ContentHash::of_str("a");
        let b = ContentHash::of_str("b");
        assert_ne!(a.combine(b), b.combine(a));
        assert_ne!(a.combine(b), a);
    }

    #[test]
    fn short_is_16_hex_chars() {
        let s = ContentHash::of_str("x").short();
        assert_eq!(s.len(), 16);
        assert!(s.chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn display_roundtrip_width() {
        let h = ContentHash::of_str("payload");
        let s = format!("{h}");
        assert_eq!(s.len(), 32);
    }

    #[test]
    fn typed_ids_format_with_prefix() {
        assert_eq!(format!("{}", WorkerId(7)), "w7");
        assert_eq!(format!("{}", TaskId(1)), "t1");
        assert_eq!(format!("{}", InvocationId(2)), "i2");
        assert_eq!(format!("{}", LibraryInstanceId(3)), "L3");
        assert_eq!(format!("{}", FileId(4)), "f4");
    }

    #[test]
    fn avalanche_on_single_bit_flip() {
        // sanity: flipping one input bit changes roughly half the output bits
        let a = ContentHash::of_bytes(&[0b0000_0000]).0;
        let b = ContentHash::of_bytes(&[0b0000_0001]).0;
        let differing = (a ^ b).count_ones();
        assert!(
            (32..=96).contains(&differing),
            "poor diffusion: {differing} differing bits"
        );
    }
}
