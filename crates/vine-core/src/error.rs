//! The workspace-wide error type.

use std::fmt;

/// Errors surfaced by any vine-rs component.
#[derive(Debug, Clone, PartialEq)]
pub enum VineError {
    /// A (library, function) pair was addressed but no such library is
    /// registered with the manager.
    UnknownLibrary(String),
    /// A function was invoked that its library does not host.
    UnknownFunction { library: String, function: String },
    /// A worker or component was asked to over-subscribe its resources.
    ResourceExhausted(String),
    /// Serialization or deserialization of code, values or messages failed.
    Serialization(String),
    /// The embedded language failed to lex/parse/execute.
    Lang(String),
    /// Software dependency resolution failed (missing package, version
    /// conflict, dependency cycle).
    Dependency(String),
    /// A referenced file is unknown to the data plane or its content hash
    /// did not match on arrival.
    Data(String),
    /// A worker disconnected or crashed.
    WorkerLost(crate::ids::WorkerId),
    /// Protocol violation between manager, worker and library.
    Protocol(String),
    /// An invocation or task failed during execution.
    ExecutionFailed(String),
    /// The operation timed out.
    Timeout(String),
    /// Pre-flight static analysis rejected a library or app before
    /// submission; the payload is the rendered lint report.
    Lint(String),
    /// Internal invariant violated (a bug in vine-rs itself).
    Internal(String),
}

impl fmt::Display for VineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VineError::UnknownLibrary(name) => write!(f, "unknown library: {name}"),
            VineError::UnknownFunction { library, function } => {
                write!(f, "library {library} does not host function {function}")
            }
            VineError::ResourceExhausted(what) => write!(f, "resource exhausted: {what}"),
            VineError::Serialization(msg) => write!(f, "serialization error: {msg}"),
            VineError::Lang(msg) => write!(f, "language error: {msg}"),
            VineError::Dependency(msg) => write!(f, "dependency error: {msg}"),
            VineError::Data(msg) => write!(f, "data error: {msg}"),
            VineError::WorkerLost(w) => write!(f, "worker lost: {w}"),
            VineError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            VineError::ExecutionFailed(msg) => write!(f, "execution failed: {msg}"),
            VineError::Timeout(msg) => write!(f, "timeout: {msg}"),
            VineError::Lint(report) => write!(f, "rejected by pre-flight analysis:\n{report}"),
            VineError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for VineError {}

pub type Result<T> = std::result::Result<T, VineError>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::WorkerId;

    #[test]
    fn display_messages() {
        assert_eq!(
            VineError::UnknownLibrary("lib".into()).to_string(),
            "unknown library: lib"
        );
        assert_eq!(
            VineError::UnknownFunction {
                library: "lib".into(),
                function: "f".into()
            }
            .to_string(),
            "library lib does not host function f"
        );
        assert_eq!(
            VineError::WorkerLost(WorkerId(3)).to_string(),
            "worker lost: w3"
        );
        assert_eq!(
            VineError::Lint("error[V010]: bad".into()).to_string(),
            "rejected by pre-flight analysis:\nerror[V010]: bad"
        );
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<VineError>();
    }
}
