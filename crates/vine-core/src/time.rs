//! Simulated time.
//!
//! The discrete-event simulator and the live runtime share one clock
//! representation: integer **microseconds**. Integer time makes event
//! ordering total and deterministic (no float drift), and a `u64` of
//! microseconds spans ~584,000 years, far beyond any workflow.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in simulated time, in microseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize)]
pub struct SimTime(pub u64);

/// A span of simulated time, in microseconds.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize)]
pub struct SimDuration(pub u64);

impl SimTime {
    pub const ZERO: SimTime = SimTime(0);

    pub fn from_secs_f64(secs: f64) -> Self {
        SimTime((secs * 1e6).round().max(0.0) as u64)
    }

    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Duration elapsed since `earlier`. Saturates at zero rather than
    /// panicking: components occasionally compare timestamps recorded by
    /// concurrent state machines where a peer may be a step ahead.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);

    pub fn from_secs_f64(secs: f64) -> Self {
        SimDuration((secs * 1e6).round().max(0.0) as u64)
    }

    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    pub fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    pub fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Time to move `bytes` at `bytes_per_sec`, rounded up to a whole
    /// microsecond so nonzero work never takes zero time.
    pub fn for_transfer(bytes: u64, bytes_per_sec: f64) -> Self {
        if bytes == 0 {
            return SimDuration::ZERO;
        }
        let secs = bytes as f64 / bytes_per_sec.max(1.0);
        SimDuration(((secs * 1e6).ceil() as u64).max(1))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration((self.0 as f64 * rhs.max(0.0)).round() as u64)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs.max(1))
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        SimDuration(iter.map(|d| d.0).sum())
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrip() {
        let t = SimTime::ZERO + SimDuration::from_secs(5) + SimDuration::from_millis(250);
        assert_eq!(t.as_micros(), 5_250_000);
        assert_eq!((t - SimTime::ZERO).as_secs_f64(), 5.25);
    }

    #[test]
    fn since_saturates() {
        let early = SimTime(100);
        let late = SimTime(200);
        assert_eq!(early.since(late), SimDuration::ZERO);
        assert_eq!(late.since(early), SimDuration(100));
    }

    #[test]
    fn transfer_time_rounds_up_and_is_nonzero() {
        // 1 byte at 1 GB/s is < 1 µs but must still take at least 1 µs
        let d = SimDuration::for_transfer(1, 1e9);
        assert_eq!(d, SimDuration(1));
        // zero bytes take zero time
        assert_eq!(SimDuration::for_transfer(0, 1e9), SimDuration::ZERO);
        // 10 MB at 10 MB/s is exactly 1 s
        let d = SimDuration::for_transfer(10_000_000, 10e6);
        assert_eq!(d, SimDuration::from_secs(1));
    }

    #[test]
    fn float_conversions() {
        assert_eq!(SimDuration::from_secs_f64(1.5).as_micros(), 1_500_000);
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
        assert!((SimDuration(1_234_567).as_secs_f64() - 1.234567).abs() < 1e-12);
    }

    #[test]
    fn scalar_ops() {
        let d = SimDuration::from_secs(10);
        assert_eq!(d * 3, SimDuration::from_secs(30));
        assert_eq!(d / 4, SimDuration::from_secs_f64(2.5));
        assert_eq!(d * 0.5, SimDuration::from_secs(5));
        assert_eq!(d / 0, d); // guarded division
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_secs).sum();
        assert_eq!(total, SimDuration::from_secs(10));
    }
}
