//! Interprocedural purity/effect inference over the call graph.
//!
//! Every function gets an [`EffectSummary`]: the global names it may read
//! or write (transitively, through every function it can call), whether it
//! performs I/O, whether it executes dynamic code, and whether it makes
//! calls the analysis cannot resolve. Summaries are computed by a fixpoint
//! over the call graph so mutual recursion converges to the union of both
//! bodies' effects.
//!
//! Resolution rules, most precise first:
//!
//! * **Builtins** use the curated table [`vine_lang::builtins::builtin_effect`]
//!   — pure ones (`len`, `range`, math/string ops) contribute nothing,
//!   `push`/`pop` write their first argument's root binding, `print` is
//!   I/O, and `eval`/`exec` are ⊤ (dynamic: anything can happen).
//! * **Native module functions** (`mod.f(...)`) receive plain values and
//!   have no handle on the interpreter's namespace; by construction they
//!   cannot write global bindings, and registry modules return fresh
//!   values rather than mutating arguments, so they count as pure.
//! * **Module `def`s and lambdas bound once** resolve to their summaries.
//! * Anything else — calling through a parameter, a rebound name, an
//!   element load — sets `calls_unknown`, the "I give up" bit that keeps
//!   every downstream consumer conservative.
//!
//! Aliasing is handled the blunt way: a local assigned from an expression
//! mentioning global `g` is assumed to alias `g`, so writing *through* the
//! local (index-assign, `push`) counts as writing `g`. Over-approximate
//! for scalars, exact enough for the container patterns that matter.

use crate::analyses::{CVal, ConstEnv};
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;
use vine_lang::ast::{walk_exprs_in, Expr, FuncDef, Program, Stmt, StmtKind, Target};
use vine_lang::autocontext::expr_reads;
use vine_lang::builtins::{builtin_effect, BuiltinEffect};

/// What running a piece of code may do, beyond computing a value.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EffectSummary {
    /// Global names possibly read.
    pub reads: BTreeSet<String>,
    /// Global names possibly written (rebinding or container mutation).
    pub writes: BTreeSet<String>,
    /// May produce observable output (`print`).
    pub io: bool,
    /// May execute dynamic code (`eval`/`exec`) — the ⊤ element.
    pub dynamic: bool,
    /// Makes at least one call the analysis cannot resolve.
    pub calls_unknown: bool,
}

impl EffectSummary {
    /// No effects at all and every call resolved.
    pub fn is_pure(&self) -> bool {
        self.writes.is_empty() && !self.io && !self.dynamic && !self.calls_unknown
    }

    /// Union `other` into `self`; true iff `self` changed.
    pub fn absorb(&mut self, other: &EffectSummary) -> bool {
        let before = (
            self.reads.len(),
            self.writes.len(),
            self.io,
            self.dynamic,
            self.calls_unknown,
        );
        self.reads.extend(other.reads.iter().cloned());
        self.writes.extend(other.writes.iter().cloned());
        self.io |= other.io;
        self.dynamic |= other.dynamic;
        self.calls_unknown |= other.calls_unknown;
        before
            != (
                self.reads.len(),
                self.writes.len(),
                self.io,
                self.dynamic,
                self.calls_unknown,
            )
    }

    /// One-line rendering for reports: `pure` or `reads{a b} writes{c} io`.
    pub fn describe(&self) -> String {
        if self.is_pure() && self.reads.is_empty() {
            return "pure".into();
        }
        let mut parts = Vec::new();
        if !self.reads.is_empty() {
            parts.push(format!(
                "reads{{{}}}",
                self.reads.iter().cloned().collect::<Vec<_>>().join(" ")
            ));
        }
        if !self.writes.is_empty() {
            parts.push(format!(
                "writes{{{}}}",
                self.writes.iter().cloned().collect::<Vec<_>>().join(" ")
            ));
        }
        if self.io {
            parts.push("io".into());
        }
        if self.dynamic {
            parts.push("dynamic".into());
        }
        if self.calls_unknown {
            parts.push("calls-unknown".into());
        }
        parts.join(" ")
    }
}

/// Effect summaries for every resolvable function in a module, plus the
/// namespace facts resolution needs.
#[derive(Clone, Debug, Default)]
pub struct EffectEnv {
    /// Summary per callable name: top-level `def`s and module-level names
    /// bound exactly once to a lambda.
    pub functions: BTreeMap<String, EffectSummary>,
    /// Direct (unabsorbed) callee names per function, for call-graph walks.
    pub calls: BTreeMap<String, BTreeSet<String>>,
    /// Every name bound at module level (imports, defs, assignments,
    /// including inside module-level blocks).
    pub module_defs: BTreeSet<String>,
}

impl EffectEnv {
    /// Compute summaries for `prog` by interprocedural fixpoint.
    pub fn compute(prog: &Program) -> EffectEnv {
        let module_defs = module_level_names(prog);

        // resolvable callables: top-level defs + once-bound lambdas
        let mut defs: BTreeMap<String, Rc<FuncDef>> = BTreeMap::new();
        let mut bind_counts: BTreeMap<String, usize> = BTreeMap::new();
        for s in prog {
            match &s.kind {
                StmtKind::FuncDef(f) => {
                    *bind_counts.entry(f.name.clone()).or_default() += 1;
                    defs.insert(f.name.clone(), Rc::clone(f));
                }
                StmtKind::Assign(Target::Var(n), e) => {
                    *bind_counts.entry(n.clone()).or_default() += 1;
                    if let Expr::Lambda(f) = e {
                        defs.insert(n.clone(), Rc::clone(f));
                    }
                }
                _ => {}
            }
        }
        defs.retain(|n, _| bind_counts.get(n) == Some(&1));
        let fn_names: BTreeSet<String> = defs.keys().cloned().collect();

        // intraprocedural pass
        let mut functions: BTreeMap<String, EffectSummary> = BTreeMap::new();
        let mut calls: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for (name, def) in &defs {
            let (summary, called) = summarize_function(def, &fn_names, &module_defs);
            functions.insert(name.clone(), summary);
            calls.insert(name.clone(), called);
        }

        // interprocedural fixpoint: absorb callee summaries until stable
        loop {
            let mut changed = false;
            let names: Vec<String> = functions.keys().cloned().collect();
            for f in &names {
                for g in calls[f].clone() {
                    if let Some(gs) = functions.get(&g).cloned() {
                        changed |= functions.get_mut(f).unwrap().absorb(&gs);
                    }
                }
            }
            if !changed {
                break;
            }
        }

        EffectEnv {
            functions,
            calls,
            module_defs,
        }
    }

    /// The effect of executing one *module-level* statement (where every
    /// assignment writes a global), callee summaries absorbed.
    pub fn stmt_effect(&self, stmt: &Stmt) -> EffectSummary {
        let (mut summary, called) = summarize_block(
            std::slice::from_ref(stmt),
            &Scope::module(),
            &self.functions.keys().cloned().collect(),
            &self.module_defs,
        );
        for g in called {
            if let Some(gs) = self.functions.get(&g) {
                summary.absorb(gs);
            }
        }
        summary
    }
}

/// Every name bound at module level: imports, function names, assignment
/// targets and `for` variables — including those inside module-level
/// `if`/`while`/`for` bodies (but not inside function bodies).
pub fn module_level_names(prog: &Program) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for_own_stmts(prog, &mut |s| match &s.kind {
        StmtKind::Import(m) => {
            out.insert(m.clone());
        }
        StmtKind::FuncDef(f) => {
            out.insert(f.name.clone());
        }
        StmtKind::Assign(Target::Var(n), _) => {
            out.insert(n.clone());
        }
        StmtKind::For(v, _, _) => {
            out.insert(v.clone());
        }
        _ => {}
    });
    out
}

/// Visit every statement in `stmts` and nested *blocks*, but not nested
/// function or lambda bodies — the "own" statements of one scope.
pub fn for_own_stmts<'a>(stmts: &'a [Stmt], visit: &mut dyn FnMut(&'a Stmt)) {
    for s in stmts {
        visit(s);
        match &s.kind {
            StmtKind::If(arms, els) => {
                for (_, body) in arms {
                    for_own_stmts(body, visit);
                }
                if let Some(e) = els {
                    for_own_stmts(e, visit);
                }
            }
            StmtKind::While(_, body) | StmtKind::For(_, _, body) => for_own_stmts(body, visit),
            _ => {}
        }
    }
}

/// Visit every expression of one scope's own statements (lambda *nodes*
/// are visited; their bodies are not).
fn for_own_exprs<'a>(stmts: &'a [Stmt], visit: &mut dyn FnMut(&'a Expr)) {
    for_own_stmts(stmts, &mut |s| match &s.kind {
        StmtKind::Assign(target, e) => {
            if let Target::Index(obj, idx) = target {
                walk_exprs_in(obj, visit);
                walk_exprs_in(idx, visit);
            }
            walk_exprs_in(e, visit);
        }
        StmtKind::Expr(e) | StmtKind::Return(Some(e)) => walk_exprs_in(e, visit),
        StmtKind::If(arms, _) => {
            for (c, _) in arms {
                walk_exprs_in(c, visit);
            }
        }
        StmtKind::While(c, _) => walk_exprs_in(c, visit),
        StmtKind::For(_, iter, _) => walk_exprs_in(iter, visit),
        _ => {}
    });
}

/// The root binding of an lvalue/argument chain: `a[i].b` → `a`.
fn root_name(e: &Expr) -> Option<&str> {
    match e {
        Expr::Var(n) => Some(n),
        Expr::Index(obj, _) | Expr::Attr(obj, _) => root_name(obj),
        _ => None,
    }
}

/// Name-resolution context for one scope.
struct Scope {
    /// Names that resolve to the local frame (params, plain assignments).
    locals: BTreeSet<String>,
    /// Locals declared `global`: writes go to the module namespace.
    declared_global: BTreeSet<String>,
    /// Locals bound (only) to function definitions whose effects are
    /// already merged — calling them is resolved, not unknown.
    local_fns: BTreeSet<String>,
    /// alias map: local name -> global roots it may alias.
    aliases: BTreeMap<String, BTreeSet<String>>,
}

impl Scope {
    /// Module scope: no locals, every name is a global.
    fn module() -> Scope {
        Scope {
            locals: BTreeSet::new(),
            declared_global: BTreeSet::new(),
            local_fns: BTreeSet::new(),
            aliases: BTreeMap::new(),
        }
    }

    fn function(def: &FuncDef) -> Scope {
        let mut declared_global = BTreeSet::new();
        for_own_stmts(&def.body, &mut |s| {
            if let StmtKind::Global(names) = &s.kind {
                declared_global.extend(names.iter().cloned());
            }
        });
        let mut locals: BTreeSet<String> = def.params.iter().cloned().collect();
        let mut local_fns = BTreeSet::new();
        let mut lambda_binds: BTreeMap<String, (usize, usize)> = BTreeMap::new(); // (total, lambda)
        for_own_stmts(&def.body, &mut |s| match &s.kind {
            StmtKind::Assign(Target::Var(n), e) => {
                if !declared_global.contains(n) {
                    locals.insert(n.clone());
                }
                let entry = lambda_binds.entry(n.clone()).or_default();
                entry.0 += 1;
                if matches!(e, Expr::Lambda(_)) {
                    entry.1 += 1;
                }
            }
            StmtKind::For(v, _, _) if !declared_global.contains(v) => {
                locals.insert(v.clone());
            }
            StmtKind::FuncDef(f) => {
                locals.insert(f.name.clone());
                local_fns.insert(f.name.clone());
            }
            _ => {}
        });
        for (n, (total, lambdas)) in &lambda_binds {
            if *total == *lambdas && !declared_global.contains(n) {
                local_fns.insert(n.clone());
            }
        }

        // alias fixpoint: local assigned from an expression mentioning
        // global g (or a local aliasing g) may alias g
        let mut aliases: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        loop {
            let mut changed = false;
            for_own_stmts(&def.body, &mut |s| {
                let StmtKind::Assign(Target::Var(n), e) = &s.kind else {
                    return;
                };
                if declared_global.contains(n) {
                    return;
                }
                let mut mentioned = BTreeSet::new();
                expr_reads(e, &mut mentioned);
                let mut roots = BTreeSet::new();
                for m in &mentioned {
                    if locals.contains(m) {
                        if let Some(r) = aliases.get(m) {
                            roots.extend(r.iter().cloned());
                        }
                    } else {
                        roots.insert(m.clone());
                    }
                }
                let entry = aliases.entry(n.clone()).or_default();
                let before = entry.len();
                entry.extend(roots);
                if entry.len() != before {
                    changed = true;
                }
            });
            if !changed {
                break;
            }
        }

        Scope {
            locals,
            declared_global,
            local_fns,
            aliases,
        }
    }

    /// Does `name` resolve to the module namespace in this scope?
    fn is_global(&self, name: &str) -> bool {
        self.declared_global.contains(name) || !self.locals.contains(name)
    }

    /// Global roots writing *through* `name` can reach.
    fn write_roots(&self, name: &str) -> BTreeSet<String> {
        if self.is_global(name) {
            [name.to_string()].into()
        } else {
            self.aliases.get(name).cloned().unwrap_or_default()
        }
    }
}

/// Summarize one function: its own body plus nested function/lambda bodies
/// (merged — a nested definition only matters if called, and assuming it
/// is called over-approximates safely).
fn summarize_function(
    def: &FuncDef,
    fn_names: &BTreeSet<String>,
    module_defs: &BTreeSet<String>,
) -> (EffectSummary, BTreeSet<String>) {
    let scope = Scope::function(def);
    summarize_block(&def.body, &scope, fn_names, module_defs)
}

/// Summarize a statement list under `scope`. Returns the summary plus the
/// names of module-level functions it calls directly (for the
/// interprocedural fixpoint to absorb).
fn summarize_block(
    stmts: &[Stmt],
    scope: &Scope,
    fn_names: &BTreeSet<String>,
    module_defs: &BTreeSet<String>,
) -> (EffectSummary, BTreeSet<String>) {
    let mut sum = EffectSummary::default();
    let mut called = BTreeSet::new();

    // reads: free names that resolve to the module namespace
    let mut read_names = BTreeSet::new();
    for_own_exprs(stmts, &mut |e| {
        if let Expr::Var(n) = e {
            read_names.insert(n.clone());
        }
    });
    for n in &read_names {
        if scope.is_global(n) && (module_defs.contains(n) || builtin_effect(n).is_none()) {
            sum.reads.insert(n.clone());
        }
    }

    // writes
    for_own_stmts(stmts, &mut |s| match &s.kind {
        StmtKind::Assign(Target::Var(n), _) if scope.is_global(n) => {
            sum.writes.insert(n.clone());
        }
        StmtKind::Assign(Target::Index(obj, _), _) => {
            if let Some(r) = root_name(obj) {
                sum.writes.extend(scope.write_roots(r));
            }
        }
        StmtKind::For(v, _, _) if scope.is_global(v) => {
            sum.writes.insert(v.clone());
        }
        StmtKind::Import(m) if scope.is_global(m) => {
            sum.writes.insert(m.clone());
        }
        StmtKind::FuncDef(f) if scope.is_global(&f.name) => {
            sum.writes.insert(f.name.clone());
        }
        _ => {}
    });

    // calls
    for_own_exprs(stmts, &mut |e| {
        let Expr::Call(callee, args) = e else { return };
        match callee.as_ref() {
            Expr::Var(n) => {
                if scope.local_fns.contains(n) {
                    // nested definition: body effects merged below
                } else if scope.locals.contains(n) && !scope.declared_global.contains(n) {
                    sum.calls_unknown = true;
                } else if fn_names.contains(n) {
                    called.insert(n.clone());
                } else if !module_defs.contains(n) {
                    match builtin_effect(n) {
                        Some(BuiltinEffect::Pure) => {}
                        Some(BuiltinEffect::MutatesArg) => {
                            if let Some(arg) = args.first() {
                                if let Some(r) = root_name(arg) {
                                    sum.writes.extend(scope.write_roots(r));
                                }
                            }
                        }
                        Some(BuiltinEffect::Io) => sum.io = true,
                        Some(BuiltinEffect::Dynamic) => sum.dynamic = true,
                        None => sum.calls_unknown = true,
                    }
                } else {
                    // module-level binding that is not a resolvable
                    // function (rebound, or not function-valued)
                    sum.calls_unknown = true;
                }
            }
            // native module functions take plain values; they cannot
            // reach the interpreter namespace
            Expr::Attr(_, _) => {}
            // immediately-invoked lambda: body merged below
            Expr::Lambda(_) => {}
            _ => sum.calls_unknown = true,
        }
    });

    // nested function and lambda bodies: assume they run
    let mut nested: Vec<Rc<FuncDef>> = Vec::new();
    for_own_stmts(stmts, &mut |s| {
        if let StmtKind::FuncDef(f) = &s.kind {
            nested.push(Rc::clone(f));
        }
    });
    for_own_exprs(stmts, &mut |e| {
        if let Expr::Lambda(f) = e {
            nested.push(Rc::clone(f));
        }
    });
    for f in nested {
        let (ns, ncalled) = summarize_function(&f, fn_names, module_defs);
        sum.absorb(&ns);
        called.extend(ncalled);
    }

    (sum, called)
}

/// Havoc `env` for every call in `stmt`: known callees clobber exactly the
/// globals they write; unknown callees clobber every non-local name.
/// `locals` are the current scope's frame-resolved names — no call can
/// write another frame's locals.
pub fn havoc_for_calls(
    stmt: &Stmt,
    env: &mut ConstEnv,
    effects: &EffectEnv,
    locals: &BTreeSet<String>,
) {
    let mut havoc_all = false;
    let mut havoc_names: BTreeSet<String> = BTreeSet::new();
    for_own_exprs(std::slice::from_ref(stmt), &mut |e| {
        let Expr::Call(callee, args) = e else { return };
        match callee.as_ref() {
            Expr::Var(n) if locals.contains(n) => havoc_all = true,
            Expr::Var(n) => {
                if let Some(s) = effects.functions.get(n) {
                    if s.dynamic || s.calls_unknown {
                        havoc_all = true;
                    } else {
                        havoc_names.extend(s.writes.iter().cloned());
                    }
                } else {
                    match builtin_effect(n) {
                        Some(BuiltinEffect::Pure) | Some(BuiltinEffect::Io) => {}
                        Some(BuiltinEffect::MutatesArg) => {
                            if let Some(r) = args.first().and_then(root_name) {
                                havoc_names.insert(r.to_string());
                            }
                        }
                        Some(BuiltinEffect::Dynamic) | None => havoc_all = true,
                    }
                }
            }
            Expr::Attr(_, _) => {}
            _ => havoc_all = true,
        }
    });
    if havoc_all {
        for (k, v) in env.iter_mut() {
            if !locals.contains(k) {
                *v = CVal::Nac;
            }
        }
        // MutatesArg on a local container is still a local effect
    }
    for n in havoc_names {
        env.insert(n, CVal::Nac);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env_of(src: &str) -> EffectEnv {
        EffectEnv::compute(&vine_lang::parse(src).unwrap())
    }

    #[test]
    fn pure_builtins_do_not_taint() {
        let env = env_of("def f(xs) { return len(xs) + max(1, 2) }");
        assert!(env.functions["f"].is_pure());
    }

    #[test]
    fn transitive_write_through_helper() {
        let env = env_of(
            "def bump() { global n\nn = n + 1 }\n\
             def work(x) { bump()\nreturn x }",
        );
        assert!(env.functions["work"].writes.contains("n"));
        assert!(!env.functions["work"].is_pure());
    }

    #[test]
    fn alias_write_counts_as_global_write() {
        let env = env_of(
            "cache = {}\n\
             def poke(k) { c = cache\nc[k] = 1 }",
        );
        assert!(
            env.functions["poke"].writes.contains("cache"),
            "{:?}",
            env.functions["poke"]
        );
    }

    #[test]
    fn push_into_global_is_a_write() {
        let env = env_of("xs = []\ndef add(v) { push(xs, v) }");
        assert!(env.functions["add"].writes.contains("xs"));
    }

    #[test]
    fn eval_is_top() {
        let env = env_of("def sneak() { eval(\"x = 1\") }");
        assert!(env.functions["sneak"].dynamic);
        assert!(!env.functions["sneak"].is_pure());
    }

    #[test]
    fn unresolvable_callee_sets_unknown() {
        let env = env_of("def apply(f, x) { return f(x) }");
        assert!(env.functions["apply"].calls_unknown);
    }

    #[test]
    fn native_module_calls_are_pure() {
        let env = env_of("import nn\ndef infer(x) { return nn.forward(x) }");
        assert!(env.functions["infer"].is_pure());
        assert!(env.functions["infer"].reads.contains("nn"));
    }

    #[test]
    fn mutual_recursion_converges() {
        let env = env_of(
            "def even(n) { if n == 0 { return true }\nreturn odd(n - 1) }\n\
             def odd(n) { if n == 0 { return false }\nprint(n)\nreturn even(n - 1) }",
        );
        assert!(env.functions["even"].io, "absorbs odd's io");
        assert!(env.functions["odd"].io);
    }

    #[test]
    fn once_bound_lambda_resolves() {
        let env = env_of("double = fn (x) { return x * 2 }\ndef use(v) { return double(v) }");
        assert!(env.functions.contains_key("double"));
        assert!(env.functions["use"].is_pure());
    }

    #[test]
    fn local_writes_are_not_global_writes() {
        let env = env_of("def f() { x = 1\nx = x + 1\nreturn x }");
        assert!(env.functions["f"].is_pure());
        assert!(env.functions["f"].writes.is_empty());
    }
}
