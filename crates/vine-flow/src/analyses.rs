//! The three classic dataflow analyses over the vinescript CFG.
//!
//! * **Reaching definitions** (forward): which assignment sites can supply
//!   a name's value at each point.
//! * **Liveness** (backward): which names may still be read later. Exact
//!   for function locals: lambdas resolve free names against *globals*,
//!   never enclosing locals, so no hidden capture keeps a local alive.
//! * **Constant propagation** (forward): which names hold a known scalar.
//!   Folding reuses the interpreter's own operator implementations
//!   ([`vine_lang::interp::binary_op`]) so a folded value can never
//!   diverge from what execution would produce.

use crate::cfg::{BlockId, Cfg, Terminator};
use crate::effects::EffectEnv;
use crate::fixpoint::{solve, Analysis, Direction, Lattice, Solution};
use std::collections::{BTreeMap, BTreeSet};
use vine_lang::ast::{Expr, Stmt, StmtKind, Target};
use vine_lang::autocontext::expr_reads;
use vine_lang::{interp, BinOp, Value};

// ---------------------------------------------------------------- liveness

#[derive(Clone, Default, Debug)]
pub struct NameSet(pub BTreeSet<String>);

impl Lattice for NameSet {
    fn join_from(&mut self, other: &Self) -> bool {
        let before = self.0.len();
        self.0.extend(other.0.iter().cloned());
        self.0.len() != before
    }
}

/// Names a leaf statement reads (directly; nested lambda bodies read
/// globals at call time, not enclosing locals, so they are excluded here
/// and accounted for by the effect analysis instead).
pub fn leaf_uses(stmt: &Stmt) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    match &stmt.kind {
        StmtKind::Assign(target, e) => {
            if let Target::Index(obj, idx) = target {
                expr_reads(obj, &mut out);
                expr_reads(idx, &mut out);
            }
            expr_reads(e, &mut out);
        }
        StmtKind::Expr(e) => expr_reads(e, &mut out),
        _ => {}
    }
    out
}

/// The single name a leaf statement (re)binds, if any.
pub fn leaf_def(stmt: &Stmt) -> Option<&str> {
    match &stmt.kind {
        StmtKind::Assign(Target::Var(n), _) => Some(n),
        StmtKind::Import(m) => Some(m),
        StmtKind::FuncDef(f) => Some(&f.name),
        _ => None,
    }
}

/// Names a terminator reads.
fn term_uses(term: &Terminator) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    match term {
        Terminator::Branch { cond, .. } => expr_reads(cond, &mut out),
        Terminator::ForNext { iter, .. } => expr_reads(iter, &mut out),
        Terminator::Return(Some(e)) => expr_reads(e, &mut out),
        _ => {}
    }
    out
}

pub struct Liveness;

impl Analysis for Liveness {
    type Fact = NameSet;

    fn direction(&self) -> Direction {
        Direction::Backward
    }

    fn boundary(&self) -> NameSet {
        NameSet::default()
    }

    fn bottom(&self) -> NameSet {
        NameSet::default()
    }

    /// `fact` arrives as live-out of the block and leaves as live-in.
    fn transfer(&self, cfg: &Cfg, id: BlockId, fact: &mut NameSet) {
        let block = &cfg.blocks[id];
        // the terminator evaluates after the statements
        if let Terminator::ForNext { var, .. } = &block.term {
            fact.0.remove(var);
        }
        fact.0.extend(term_uses(&block.term));
        for s in block.stmts.iter().rev() {
            if let Some(d) = leaf_def(s) {
                fact.0.remove(d);
            }
            fact.0.extend(leaf_uses(s));
        }
    }
}

/// Liveness solution: `input[b]` is live-out of block b, `output[b]` is
/// live-in.
pub fn liveness(cfg: &Cfg) -> Solution<NameSet> {
    solve(cfg, &Liveness)
}

// ------------------------------------------------------ reaching definitions

/// A definition site: (name, block, statement index within block).
/// Terminator-bound names (`for` variables) use `stmt == usize::MAX`.
pub type DefSite = (String, BlockId, usize);

#[derive(Clone, Default, Debug)]
pub struct DefSet(pub BTreeSet<DefSite>);

impl Lattice for DefSet {
    fn join_from(&mut self, other: &Self) -> bool {
        let before = self.0.len();
        self.0.extend(other.0.iter().cloned());
        self.0.len() != before
    }
}

pub struct Reaching;

impl Analysis for Reaching {
    type Fact = DefSet;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn boundary(&self) -> DefSet {
        DefSet::default()
    }

    fn bottom(&self) -> DefSet {
        DefSet::default()
    }

    fn transfer(&self, cfg: &Cfg, id: BlockId, fact: &mut DefSet) {
        let block = &cfg.blocks[id];
        for (i, s) in block.stmts.iter().enumerate() {
            if let Some(d) = leaf_def(s) {
                fact.0.retain(|(n, _, _)| n != d);
                fact.0.insert((d.to_string(), id, i));
            }
        }
        if let Terminator::ForNext { var, .. } = &block.term {
            // the loop variable is rebound on the body edge; keep it simple
            // (and sound) by treating it as defined on both out-edges
            fact.0.retain(|(n, _, _)| n != var);
            fact.0.insert((var.clone(), id, usize::MAX));
        }
    }
}

/// Reaching definitions: `input[b]` is the def set at block entry.
pub fn reaching(cfg: &Cfg) -> Solution<DefSet> {
    solve(cfg, &Reaching)
}

// ------------------------------------------------------ constant propagation

/// A name's abstract value: a known scalar constant, or Not-A-Constant.
#[derive(Clone, Debug, PartialEq)]
pub enum CVal {
    Const(Value),
    Nac,
}

/// Map from name to abstract value. Absent names are ⊥ (never assigned on
/// any path seen so far); reading one yields Nac.
pub type ConstEnv = BTreeMap<String, CVal>;

/// `None` = block not reached yet (⊥ of the whole-environment lattice):
/// joining an unreached path contributes nothing, which is what makes
/// facts inside branches precise.
#[derive(Clone, Debug, Default)]
pub struct ConstFact(pub Option<ConstEnv>);

impl Lattice for ConstFact {
    fn join_from(&mut self, other: &Self) -> bool {
        let Some(theirs) = &other.0 else {
            return false;
        };
        let Some(ours) = &mut self.0 else {
            self.0 = Some(theirs.clone());
            return true;
        };
        let mut changed = false;
        for (k, v) in theirs {
            match ours.get(k) {
                None => {
                    // assigned on their path only; widen to Nac rather
                    // than claiming their constant holds on ours
                    ours.insert(k.clone(), CVal::Nac);
                    changed = true;
                }
                Some(cur) if cur == v => {}
                Some(CVal::Nac) => {}
                Some(_) => {
                    ours.insert(k.clone(), CVal::Nac);
                    changed = true;
                }
            }
        }
        // names only we assigned are unbound on their path: widen too
        for (k, v) in ours.iter_mut() {
            if !theirs.contains_key(k) && *v != CVal::Nac {
                *v = CVal::Nac;
                changed = true;
            }
        }
        changed
    }
}

/// Is `v` a scalar we can re-materialize as a literal expression?
pub fn scalar(v: &Value) -> bool {
    matches!(
        v,
        Value::None | Value::Bool(_) | Value::Int(_) | Value::Float(_) | Value::Str(_)
    )
}

/// Evaluate `e` under `env` to a constant if possible. Only literals,
/// names, and operators fold — never calls, even of pure builtins, so a
/// fold can't hide an expensive computation or mask an arity error. Uses
/// the interpreter's own operator functions; any evaluation error means
/// "not a constant" (the original program may or may not error — we make
/// no claim either way).
pub fn eval_const(e: &Expr, env: &ConstEnv) -> CVal {
    match e {
        Expr::None => CVal::Const(Value::None),
        Expr::Bool(b) => CVal::Const(Value::Bool(*b)),
        Expr::Int(i) => CVal::Const(Value::Int(*i)),
        Expr::Float(f) => CVal::Const(Value::Float(*f)),
        Expr::Str(s) => CVal::Const(Value::str(s.clone())),
        Expr::Var(n) => env.get(n).cloned().unwrap_or(CVal::Nac),
        Expr::Unary(op, x) => match eval_const(x, env) {
            CVal::Const(v) => interp::unary_op(*op, &v)
                .map(CVal::Const)
                .unwrap_or(CVal::Nac),
            CVal::Nac => CVal::Nac,
        },
        Expr::Binary(op, l, r) => {
            let lv = match eval_const(l, env) {
                CVal::Const(v) => v,
                CVal::Nac => return CVal::Nac,
            };
            match op {
                // short-circuit operators yield one operand's value
                BinOp::And => {
                    if !lv.truthy() {
                        CVal::Const(lv)
                    } else {
                        eval_const(r, env)
                    }
                }
                BinOp::Or => {
                    if lv.truthy() {
                        CVal::Const(lv)
                    } else {
                        eval_const(r, env)
                    }
                }
                _ => match eval_const(r, env) {
                    CVal::Const(rv) => interp::binary_op(*op, &lv, &rv)
                        .ok()
                        .filter(scalar)
                        .map(CVal::Const)
                        .unwrap_or(CVal::Nac),
                    CVal::Nac => CVal::Nac,
                },
            }
        }
        _ => CVal::Nac,
    }
}

/// Apply one leaf statement's effect to a constant environment, consulting
/// `effects` to havoc exactly the globals a called function may write.
/// `locals` are the current scope's frame-resolved names (empty at module
/// level): calls can never write another frame's locals.
pub fn const_transfer_stmt(
    stmt: &Stmt,
    env: &mut ConstEnv,
    effects: &EffectEnv,
    locals: &BTreeSet<String>,
) {
    // calls anywhere in the statement may clobber globals
    crate::effects::havoc_for_calls(stmt, env, effects, locals);
    match &stmt.kind {
        StmtKind::Assign(Target::Var(n), e) => {
            let v = eval_const(e, env);
            env.insert(n.clone(), v);
        }
        StmtKind::Assign(Target::Index(obj, _), _) => {
            // mutating a container: the binding still refers to the same
            // object, but any name rooted here loses const-ness
            let mut roots = BTreeSet::new();
            expr_reads(obj, &mut roots);
            for r in roots {
                env.insert(r, CVal::Nac);
            }
        }
        StmtKind::Import(m) => {
            env.insert(m.clone(), CVal::Nac);
        }
        StmtKind::FuncDef(f) => {
            env.insert(f.name.clone(), CVal::Nac);
        }
        StmtKind::If(..) | StmtKind::While(..) | StmtKind::For(..) => {
            // compound statements only reach here when applied whole (the
            // CFG decomposes them): havoc everything they may write
            for w in effects.stmt_effect(stmt).writes {
                env.insert(w, CVal::Nac);
            }
        }
        _ => {}
    }
}

pub struct ConstProp<'a> {
    pub effects: &'a EffectEnv,
    /// Names with unknown incoming values (function parameters, globals).
    pub unknown_at_entry: Vec<String>,
    /// Frame-resolved names of the scope under analysis (empty at module
    /// level); calls cannot clobber these.
    pub locals: BTreeSet<String>,
}

impl Analysis for ConstProp<'_> {
    type Fact = ConstFact;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn boundary(&self) -> ConstFact {
        let mut env = ConstEnv::new();
        for n in &self.unknown_at_entry {
            env.insert(n.clone(), CVal::Nac);
        }
        ConstFact(Some(env))
    }

    fn bottom(&self) -> ConstFact {
        ConstFact(None)
    }

    fn transfer(&self, cfg: &Cfg, id: BlockId, fact: &mut ConstFact) {
        let Some(env) = &mut fact.0 else { return };
        let block = &cfg.blocks[id];
        for s in &block.stmts {
            const_transfer_stmt(s, env, self.effects, &self.locals);
        }
        if let Terminator::ForNext { var, .. } = &block.term {
            env.insert(var.clone(), CVal::Nac);
        }
    }
}

/// Constant propagation: `input[b]` is the environment at block entry
/// (`None` for blocks never reached).
pub fn constprop(
    cfg: &Cfg,
    effects: &EffectEnv,
    unknown_at_entry: Vec<String>,
    locals: BTreeSet<String>,
) -> Solution<ConstFact> {
    solve(
        cfg,
        &ConstProp {
            effects,
            unknown_at_entry,
            locals,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg_of(src: &str) -> Cfg {
        Cfg::lower(&vine_lang::parse(src).unwrap())
    }

    #[test]
    fn liveness_sees_through_branches() {
        let cfg = cfg_of("a = 1\nif c { b = a } else { b = 2 }\nprint(b)");
        let sol = liveness(&cfg);
        // live-in of entry: c is read by the branch, a is read in one arm;
        // b is defined before its use
        let live_in_entry = &sol.output[Cfg::ENTRY].0;
        assert!(live_in_entry.contains("c"));
        assert!(!live_in_entry.contains("b"));
    }

    #[test]
    fn reaching_defs_replace_on_rebind() {
        let cfg = cfg_of("x = 1\nx = 2\ny = x");
        let sol = reaching(&cfg);
        let defs: Vec<_> = sol.output[Cfg::ENTRY]
            .0
            .iter()
            .filter(|(n, _, _)| n == "x")
            .collect();
        assert_eq!(defs.len(), 1, "second def kills the first");
    }

    #[test]
    fn constants_fold_with_interpreter_semantics() {
        let env = ConstEnv::new();
        let prog = vine_lang::parse("x = (2 + 3) * 4").unwrap();
        let StmtKind::Assign(_, e) = &prog[0].kind else {
            panic!()
        };
        assert_eq!(eval_const(e, &env), CVal::Const(Value::Int(20)));
        // division by zero does not fold (and does not panic)
        let prog = vine_lang::parse("x = 1 / 0").unwrap();
        let StmtKind::Assign(_, e) = &prog[0].kind else {
            panic!()
        };
        assert_eq!(eval_const(e, &env), CVal::Nac);
    }

    #[test]
    fn constprop_tracks_through_straight_line() {
        let effects = EffectEnv::default();
        let cfg = cfg_of("a = 2\nb = a + 3\nif b > 4 { c = 1 }");
        let sol = constprop(&cfg, &effects, vec![], BTreeSet::new());
        // at the branch block's input, b is Const(5)
        let found = sol.output.iter().any(|f| {
            f.0.as_ref()
                .is_some_and(|env| env.get("b") == Some(&CVal::Const(Value::Int(5))))
        });
        assert!(found);
    }

    #[test]
    fn join_widens_disagreeing_constants() {
        let effects = EffectEnv::default();
        let cfg = cfg_of("if p { x = 1 } else { x = 2 }\ny = x");
        let sol = constprop(&cfg, &effects, vec!["p".into()], BTreeSet::new());
        // after the join, x is Nac in the block computing y
        let exit_env = sol
            .output
            .iter()
            .enumerate()
            .filter(|(b, _)| cfg.succs(*b).is_empty())
            .find_map(|(_, f)| f.0.clone())
            .unwrap();
        assert_eq!(exit_env.get("x"), Some(&CVal::Nac));
    }
}
