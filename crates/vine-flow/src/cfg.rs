//! Basic-block control-flow graph for vinescript statement lists.
//!
//! A function body (or a module's top level) lowers to a graph of
//! [`Block`]s: straight-line leaf statements ended by a [`Terminator`].
//! Structured control flow desugars the classic way — `if`/`elif` chains
//! into branch diamonds, `while` into a head-test loop, `for` into a
//! [`Terminator::ForNext`] head that binds the loop variable on the body
//! edge — and `break`/`continue` resolve against an explicit loop stack.
//!
//! Statements that lexically follow a `return`/`break`/`continue` in the
//! same block can never execute; lowering records their spans in
//! [`Cfg::unreachable`] so the V018 lint reports them without re-walking.

use vine_lang::ast::{Expr, Span, Stmt, StmtKind};

pub type BlockId = usize;

/// How control leaves a block.
#[derive(Clone, Debug)]
pub enum Terminator {
    /// Unconditional fall-through.
    Goto(BlockId),
    /// Two-way branch on `cond` (evaluated after the block's statements).
    Branch {
        cond: Expr,
        /// Span of the `if`/`while` statement the condition came from.
        span: Span,
        then_blk: BlockId,
        else_blk: BlockId,
    },
    /// `for` loop head: take the next element of `iter` into `var` and
    /// enter `body`, or leave via `exit` when exhausted. `var` is assigned
    /// on the body edge (and holds the last element after a non-empty
    /// loop), so analyses treat it as written by this terminator.
    ForNext {
        var: String,
        iter: Expr,
        body: BlockId,
        exit: BlockId,
    },
    /// Function return (module-level `return` is a parse error upstream).
    Return(Option<Expr>),
    /// Falling off the end of the lowered statement list.
    Exit,
}

/// Straight-line statements plus the terminator that leaves them.
/// `stmts` holds only leaf kinds (assign, expr, import, global, funcdef);
/// control flow lives exclusively in terminators.
#[derive(Clone, Debug)]
pub struct Block {
    pub stmts: Vec<Stmt>,
    pub term: Terminator,
}

/// The lowered graph. Block 0 is always the entry.
#[derive(Clone, Debug)]
pub struct Cfg {
    pub blocks: Vec<Block>,
    /// Spans of statements that lexically follow a `return`, `break` or
    /// `continue` and therefore can never execute.
    pub unreachable: Vec<Span>,
}

impl Cfg {
    pub const ENTRY: BlockId = 0;

    /// Lower a statement list (function body or module top level).
    pub fn lower(stmts: &[Stmt]) -> Cfg {
        let mut lw = Lowerer {
            blocks: Vec::new(),
            unreachable: Vec::new(),
        };
        let entry = lw.new_block();
        debug_assert_eq!(entry, Self::ENTRY);
        // loop stack is empty at the top level: a stray break/continue is a
        // runtime error upstream; lowering routes it to Exit
        lw.lower_into(stmts, entry, &mut Vec::new());
        Cfg {
            blocks: lw.blocks,
            unreachable: lw.unreachable,
        }
    }

    /// Successor block ids of `id`.
    pub fn succs(&self, id: BlockId) -> Vec<BlockId> {
        match &self.blocks[id].term {
            Terminator::Goto(t) => vec![*t],
            Terminator::Branch {
                then_blk, else_blk, ..
            } => vec![*then_blk, *else_blk],
            Terminator::ForNext { body, exit, .. } => vec![*body, *exit],
            Terminator::Return(_) | Terminator::Exit => vec![],
        }
    }

    /// Predecessor lists for every block.
    pub fn preds(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for b in 0..self.blocks.len() {
            for s in self.succs(b) {
                preds[s].push(b);
            }
        }
        preds
    }

    /// Blocks reachable from the entry.
    pub fn reachable(&self) -> Vec<bool> {
        let mut seen = vec![false; self.blocks.len()];
        let mut stack = vec![Self::ENTRY];
        while let Some(b) = stack.pop() {
            if std::mem::replace(&mut seen[b], true) {
                continue;
            }
            stack.extend(self.succs(b));
        }
        seen
    }
}

struct Lowerer {
    blocks: Vec<Block>,
    unreachable: Vec<Span>,
}

/// (continue target, break target) for the innermost enclosing loop.
type LoopStack = Vec<(BlockId, BlockId)>;

impl Lowerer {
    fn new_block(&mut self) -> BlockId {
        self.blocks.push(Block {
            stmts: Vec::new(),
            term: Terminator::Exit,
        });
        self.blocks.len() - 1
    }

    fn set_term(&mut self, id: BlockId, term: Terminator) {
        self.blocks[id].term = term;
    }

    /// Lower `stmts` starting in block `cur`; return the block where
    /// control continues afterwards, or `None` if every path diverged
    /// (return/break/continue). Statements after a divergence are recorded
    /// as unreachable and not lowered.
    fn lower_into(
        &mut self,
        stmts: &[Stmt],
        mut cur: BlockId,
        loops: &mut LoopStack,
    ) -> Option<BlockId> {
        let mut it = stmts.iter();
        while let Some(s) = it.next() {
            match &s.kind {
                StmtKind::If(arms, els) => {
                    let join = self.new_block();
                    let mut cond_blk = cur;
                    for (i, (cond, body)) in arms.iter().enumerate() {
                        let then_blk = self.new_block();
                        let last_arm = i + 1 == arms.len();
                        let else_blk = if last_arm && els.is_none() {
                            join
                        } else {
                            self.new_block()
                        };
                        self.set_term(
                            cond_blk,
                            Terminator::Branch {
                                cond: cond.clone(),
                                span: s.span,
                                then_blk,
                                else_blk,
                            },
                        );
                        if let Some(end) = self.lower_into(body, then_blk, loops) {
                            self.set_term(end, Terminator::Goto(join));
                        }
                        cond_blk = else_blk;
                    }
                    if let Some(body) = els {
                        if let Some(end) = self.lower_into(body, cond_blk, loops) {
                            self.set_term(end, Terminator::Goto(join));
                        }
                    }
                    cur = join;
                }
                StmtKind::While(cond, body) => {
                    let head = self.new_block();
                    let body_blk = self.new_block();
                    let exit = self.new_block();
                    self.set_term(cur, Terminator::Goto(head));
                    self.set_term(
                        head,
                        Terminator::Branch {
                            cond: cond.clone(),
                            span: s.span,
                            then_blk: body_blk,
                            else_blk: exit,
                        },
                    );
                    loops.push((head, exit));
                    if let Some(end) = self.lower_into(body, body_blk, loops) {
                        self.set_term(end, Terminator::Goto(head));
                    }
                    loops.pop();
                    cur = exit;
                }
                StmtKind::For(var, iter, body) => {
                    let head = self.new_block();
                    let body_blk = self.new_block();
                    let exit = self.new_block();
                    self.set_term(cur, Terminator::Goto(head));
                    self.set_term(
                        head,
                        Terminator::ForNext {
                            var: var.clone(),
                            iter: iter.clone(),
                            body: body_blk,
                            exit,
                        },
                    );
                    loops.push((head, exit));
                    if let Some(end) = self.lower_into(body, body_blk, loops) {
                        self.set_term(end, Terminator::Goto(head));
                    }
                    loops.pop();
                    cur = exit;
                }
                StmtKind::Return(e) => {
                    self.set_term(cur, Terminator::Return(e.clone()));
                    self.mark_unreachable(it);
                    return None;
                }
                StmtKind::Break => {
                    let target = loops.last().map(|(_, brk)| *brk);
                    match target {
                        Some(t) => self.set_term(cur, Terminator::Goto(t)),
                        None => self.set_term(cur, Terminator::Exit),
                    }
                    self.mark_unreachable(it);
                    return None;
                }
                StmtKind::Continue => {
                    let target = loops.last().map(|(cont, _)| *cont);
                    match target {
                        Some(t) => self.set_term(cur, Terminator::Goto(t)),
                        None => self.set_term(cur, Terminator::Exit),
                    }
                    self.mark_unreachable(it);
                    return None;
                }
                _ => self.blocks[cur].stmts.push(s.clone()),
            }
        }
        Some(cur)
    }

    fn mark_unreachable(&mut self, rest: std::slice::Iter<'_, Stmt>) {
        if let Some(next) = rest.as_slice().first() {
            self.unreachable.push(next.span);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lower(src: &str) -> Cfg {
        Cfg::lower(&vine_lang::parse(src).unwrap())
    }

    #[test]
    fn straight_line_is_one_block() {
        let cfg = lower("a = 1\nb = a + 1");
        assert_eq!(cfg.blocks.len(), 1);
        assert_eq!(cfg.blocks[0].stmts.len(), 2);
        assert!(matches!(cfg.blocks[0].term, Terminator::Exit));
        assert!(cfg.unreachable.is_empty());
    }

    #[test]
    fn if_else_forms_diamond() {
        let cfg = lower("a = 1\nif a > 0 { b = 1 } else { b = 2 }\nc = b");
        // entry, join, then, else — all reachable, both arms goto join
        let reach = cfg.reachable();
        assert!(reach.iter().all(|r| *r));
        let succ_entry = cfg.succs(Cfg::ENTRY);
        assert_eq!(succ_entry.len(), 2);
    }

    #[test]
    fn while_loop_back_edge() {
        let cfg = lower("i = 0\nwhile i < 3 { i = i + 1 }\ndone = i");
        // some block must have the head as successor twice over the graph
        let preds = cfg.preds();
        assert!(preds.iter().any(|p| p.len() >= 2), "loop head has 2 preds");
    }

    #[test]
    fn break_targets_loop_exit_and_marks_unreachable() {
        let cfg = lower("while true { break\nx = 1 }\ny = 2");
        assert_eq!(cfg.unreachable.len(), 1);
    }

    #[test]
    fn code_after_return_is_unreachable() {
        let src = "def f() { return 1\nx = 2 }";
        let prog = vine_lang::parse(src).unwrap();
        let StmtKind::FuncDef(f) = &prog[0].kind else {
            panic!()
        };
        let cfg = Cfg::lower(&f.body);
        assert_eq!(cfg.unreachable.len(), 1);
    }

    #[test]
    fn for_loop_binds_var_on_body_edge() {
        let cfg = lower("for i in range(3) { x = i }");
        let has_fornext = cfg
            .blocks
            .iter()
            .any(|b| matches!(&b.term, Terminator::ForNext { var, .. } if var == "i"));
        assert!(has_fornext);
    }
}
