//! # vine-flow
//!
//! Dataflow analysis engine for vinescript. Four layers, bottom to top:
//!
//! * [`cfg`] — lower a statement list to a basic-block control-flow graph;
//! * [`fixpoint`] — a generic worklist solver over join-semilattice facts,
//!   forward or backward;
//! * [`analyses`] — reaching definitions, liveness, and constant
//!   propagation (folding with the interpreter's own operator semantics);
//! * [`effects`] — interprocedural purity/effect summaries over the call
//!   graph, with a curated builtin table ([`vine_lang::builtins`]) and
//!   `eval`/`exec` as ⊤.
//!
//! On top sits [`hoist::discover`]: the flow-based upgrade of
//! [`vine_lang::autocontext::discover`], the paper's §6 "seamless
//! discovery of high-level contexts". It hoists module statements whose
//! values are provably invocation-invariant *even through calls*, and
//! constant-folds statements that read invocation state into hoistable
//! constants. `vine-lint` builds its flow lints (dead store, unreachable
//! code, constant condition, effectful setup in fork mode) on the same
//! layers, and `vine-runtime` turns discoveries into installable
//! `LibrarySpec`s.

pub mod analyses;
pub mod cfg;
pub mod effects;
pub mod fixpoint;
pub mod hoist;

pub use analyses::{constprop, liveness, reaching, CVal, ConstEnv};
pub use cfg::{Block, BlockId, Cfg, Terminator};
pub use effects::{EffectEnv, EffectSummary};
pub use fixpoint::{solve, Analysis, Direction, Lattice, Solution};
pub use hoist::{discover, FlowDiscovery, HoistedStmt};

#[cfg(test)]
mod tests {
    use super::*;

    const MODULE: &str = r#"
        import nn

        model_dim = 64
        model = nn.load_model(4, model_dim)
        labels = ["a", "b", "c"]
        served = 0
        capacity = served + 4096

        def classify(img) {
            global served
            served = served + 1
            return labels[nn.forward(model, img) % len(labels)]
        }
    "#;

    #[test]
    fn flow_hoists_strictly_more_than_syntactic() {
        let flow = discover(MODULE, &["classify"]).unwrap();
        let syn = vine_lang::autocontext::discover(MODULE, &["classify"]).unwrap();
        // syntactic: `capacity = served + 4096` reads the mutated counter
        // and stays residue; flow folds it to `capacity = 4096;`
        assert!(flow.hoisted.len() > 6 - syn.residue.len(), "sanity");
        assert!(flow.context.residue.len() < syn.residue.len());
        assert_eq!(flow.folded, 1);
        let fold = flow
            .hoisted
            .iter()
            .find(|h| h.folded_from.is_some())
            .unwrap();
        assert_eq!(fold.source, "capacity = 4096;");
    }

    #[test]
    fn pure_builtin_call_does_not_block_hoisting() {
        let src = r#"
            sizes = [2, 4, 8]
            count = len(sizes)
            def work(i) { return sizes[i % count] }
        "#;
        let flow = discover(src, &["work"]).unwrap();
        assert!(flow.context.provides.contains(&"count".to_string()));
        assert!(flow.context.residue.is_empty());
    }

    #[test]
    fn through_call_mutation_blocks_hoisting() {
        // the helper's write is invisible to the syntactic pass (no
        // `global` read in the statement itself) but flow sees through it
        let src = r#"
            def bump() {
                global hits
                hits = hits + 1
            }
            hits = 0
            mirror = hits
            def work(x) { bump()
                return x }
        "#;
        let flow = discover(src, &["work"]).unwrap();
        assert!(!flow.context.provides.contains(&"hits".to_string()));
        // mirror constant-folds to 0 — hoistable by value
        assert!(flow.context.provides.contains(&"mirror".to_string()));
        assert_eq!(flow.folded, 1);
    }

    #[test]
    fn eval_in_work_function_blocks_everything() {
        let src = r#"
            seed = 7
            def work(x) { return eval("seed") + x }
        "#;
        let flow = discover(src, &["work"]).unwrap();
        assert!(flow.context.provides.is_empty(), "{:?}", flow.context);
        assert_eq!(flow.context.residue.len(), 1);
    }

    #[test]
    fn container_built_by_loop_hoists() {
        let src = r#"
            table = []
            for i in range(16) {
                push(table, i * i)
            }
            def lookup(i) { return table[i] }
        "#;
        let flow = discover(src, &["lookup"]).unwrap();
        assert!(flow.context.provides.contains(&"table".to_string()));
        assert!(flow.context.residue.is_empty());
    }

    #[test]
    fn io_statement_never_hoists() {
        let src = r#"
            banner = "up"
            print(banner)
            def work(x) { return x }
        "#;
        let flow = discover(src, &["work"]).unwrap();
        assert!(flow.context.provides.contains(&"banner".to_string()));
        assert_eq!(flow.context.residue.len(), 1);
        assert!(flow.context.residue[0].contains("print"));
    }

    #[test]
    fn compound_statement_havocs_constants() {
        // the `if` leaves g at 5, not 1: `derived` must not fold to 2
        let src = r#"
            def bump() { global served
                served = served + 1 }
            g = 1
            served = 0
            if len("xyz") < 4 {
                g = 5
            }
            derived = g + 1
            def work() { bump()
                return served + derived }
        "#;
        let flow = discover(src, &["work"]).unwrap();
        assert_eq!(flow.folded, 0, "{:?}", flow.hoisted);
        // g itself is still hoistable (work never touches it), so the
        // whole chain hoists unfolded instead
        assert!(flow.context.provides.contains(&"derived".to_string()));
    }

    #[test]
    fn write_after_residue_read_stays_residue() {
        // residue reads x, then x is reassigned: hoisting the second
        // write would change what the residue observed
        let src = r#"
            def bump() { global served
                served = served + 1 }
            x = 1
            served = x
            x = []
            def work() { bump()
                return served }
        "#;
        let flow = discover(src, &["work"]).unwrap();
        assert!(
            flow.context.residue.iter().any(|r| r.contains("x = [];")),
            "{:?}",
            flow.context.residue
        );
    }
}
