//! Generic worklist fixpoint solver over a [`Cfg`].
//!
//! An analysis supplies a join-semilattice fact type and a block transfer
//! function; the solver iterates blocks off a worklist until facts
//! stabilize. Both directions are supported: forward analyses (reaching
//! definitions, constant propagation) join over predecessors, backward
//! analyses (liveness) join over successors. Termination is by the usual
//! argument — facts only grow under [`Lattice::join`] and every lattice
//! used here has finite height in the names occurring in the program.

use crate::cfg::{BlockId, Cfg};

/// A join-semilattice fact.
pub trait Lattice: Clone {
    /// Join `other` into `self`; return true iff `self` changed.
    fn join_from(&mut self, other: &Self) -> bool;
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    Forward,
    Backward,
}

/// An analysis: fact type + transfer function.
pub trait Analysis {
    type Fact: Lattice;

    fn direction(&self) -> Direction;

    /// Fact at the analysis boundary: the entry block's input for forward
    /// analyses, every exit block's input for backward analyses.
    fn boundary(&self) -> Self::Fact;

    /// The ⊥ fact blocks start from before any information arrives.
    fn bottom(&self) -> Self::Fact;

    /// Apply block `id`'s effect to `fact` (in place). For forward
    /// analyses `fact` is the block-entry fact and becomes the block-exit
    /// fact; mirrored for backward analyses.
    fn transfer(&self, cfg: &Cfg, id: BlockId, fact: &mut Self::Fact);
}

/// Per-block solution: the fact *entering* each block's transfer function
/// (`input`) and the fact it produces (`output`). For a forward analysis
/// `input[b]` is the fact at the top of block b; for a backward analysis it
/// is the fact at the bottom (after the terminator).
pub struct Solution<F> {
    pub input: Vec<F>,
    pub output: Vec<F>,
}

/// Run `analysis` to fixpoint over `cfg`.
pub fn solve<A: Analysis>(cfg: &Cfg, analysis: &A) -> Solution<A::Fact> {
    let n = cfg.blocks.len();
    let preds = cfg.preds();
    // edges facts flow across: predecessors for forward, successors for backward
    let sources: Vec<Vec<BlockId>> = match analysis.direction() {
        Direction::Forward => preds,
        Direction::Backward => (0..n).map(|b| cfg.succs(b)).collect(),
    };
    let mut input: Vec<A::Fact> = (0..n).map(|_| analysis.bottom()).collect();
    let mut output: Vec<A::Fact> = (0..n).map(|_| analysis.bottom()).collect();

    // boundary blocks: entry for forward; blocks with no successors for backward
    match analysis.direction() {
        Direction::Forward => input[Cfg::ENTRY].join_from(&analysis.boundary()),
        Direction::Backward => {
            let mut changed = false;
            for (b, inp) in input.iter_mut().enumerate() {
                if cfg.succs(b).is_empty() {
                    changed |= inp.join_from(&analysis.boundary());
                }
            }
            changed
        }
    };

    let mut work: Vec<BlockId> = (0..n).collect();
    let mut queued = vec![true; n];
    while let Some(b) = work.pop() {
        queued[b] = false;
        // (re)join inputs from sources
        for &s in &sources[b] {
            let src_out = output[s].clone();
            input[b].join_from(&src_out);
        }
        let mut fact = input[b].clone();
        analysis.transfer(cfg, b, &mut fact);
        if output[b].join_from(&fact) {
            // fact grew: everyone downstream must re-run
            for t in 0..n {
                if sources[t].contains(&b) && !queued[t] {
                    queued[t] = true;
                    work.push(t);
                }
            }
        }
    }
    Solution { input, output }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use vine_lang::ast::{StmtKind, Target};

    /// Toy forward analysis: set of names assigned on some path.
    struct MaybeAssigned;

    #[derive(Clone, Default)]
    struct NameSet(BTreeSet<String>);

    impl Lattice for NameSet {
        fn join_from(&mut self, other: &Self) -> bool {
            let before = self.0.len();
            self.0.extend(other.0.iter().cloned());
            self.0.len() != before
        }
    }

    impl Analysis for MaybeAssigned {
        type Fact = NameSet;
        fn direction(&self) -> Direction {
            Direction::Forward
        }
        fn boundary(&self) -> NameSet {
            NameSet::default()
        }
        fn bottom(&self) -> NameSet {
            NameSet::default()
        }
        fn transfer(&self, cfg: &Cfg, id: crate::cfg::BlockId, fact: &mut NameSet) {
            for s in &cfg.blocks[id].stmts {
                if let StmtKind::Assign(Target::Var(n), _) = &s.kind {
                    fact.0.insert(n.clone());
                }
            }
            if let crate::cfg::Terminator::ForNext { var, .. } = &cfg.blocks[id].term {
                fact.0.insert(var.clone());
            }
        }
    }

    #[test]
    fn converges_through_branches_and_loops() {
        let src = "a = 1\nif a { b = 2 } else { c = 3 }\nwhile a < 10 { a = a + 1\nd = a }";
        let cfg = Cfg::lower(&vine_lang::parse(src).unwrap());
        let sol = solve(&cfg, &MaybeAssigned);
        // at every exit-reachable point, all four names may be assigned
        let all: BTreeSet<String> = ["a", "b", "c", "d"].iter().map(|s| s.to_string()).collect();
        let last = sol
            .output
            .iter()
            .enumerate()
            .filter(|(b, _)| cfg.succs(*b).is_empty())
            .map(|(_, f)| f.0.clone())
            .next()
            .unwrap();
        assert_eq!(last, all);
    }
}
