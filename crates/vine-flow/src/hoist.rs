//! Flow-based context discovery: the upgrade of the syntactic
//! [`vine_lang::autocontext`] pass to real dataflow.
//!
//! The contract is the same — classify each module-level statement as
//! hoistable context or per-invocation residue and synthesize
//! `context_setup` — but the classification is driven by interprocedural
//! [`EffectSummary`]s instead of surface reads, which makes it both
//! *sounder* (a statement calling a helper that writes invocation state no
//! longer hoists just because the mutated name is not lexically visible;
//! container mutation without a `global` declaration is still a write) and
//! *more precise* (pure builtin calls don't block hoisting, and a
//! statement whose right-hand side constant-folds to a scalar hoists as
//! the folded constant even when it *reads* invocation-mutated state —
//! the read happens at fold time, before any invocation ran).
//!
//! Soundness argument for the transformed order (setup first, residue at
//! boot, invocations after): a hoisted statement (1) has no I/O, dynamic
//! code, or unresolved calls, (2) touches no name the work set mutates,
//! (3) reads only module names that hoisted before it, (4) writes no
//! name an earlier residue statement read or wrote, and (5) reads no
//! name an earlier residue statement wrote. (3)+(4)+(5) mean the
//! hoisted subsequence and the residue subsequence are independent, so
//! interleaving them back yields the original execution; (1)+(2) mean no
//! invocation can observe or disturb the difference afterwards. Folded
//! statements substitute the value the statement would have produced *in
//! original order* (the constant environment tracks every earlier
//! statement, residue included), so the post-boot state is unchanged.
//! A differential proptest in `tests/differential.rs` holds this to
//! bit-identical executions.

use crate::analyses::{const_transfer_stmt, eval_const, scalar, CVal, ConstEnv};
use crate::effects::{EffectEnv, EffectSummary};
use std::collections::{BTreeMap, BTreeSet};
use vine_core::{Result, VineError};
use vine_lang::ast::{Expr, FuncDef, Program, Stmt, StmtKind, Target};
use vine_lang::autocontext::DiscoveredContext;
use vine_lang::inspect::{format_funcdef, format_program};
use vine_lang::Value;

/// One hoisted statement, with provenance when it was rewritten.
#[derive(Debug, Clone, PartialEq)]
pub struct HoistedStmt {
    /// Formatted source of the statement as it appears in the setup.
    pub source: String,
    /// When constant folding rewrote the statement, the original text.
    pub folded_from: Option<String>,
}

/// The outcome of flow-based discovery: a drop-in
/// [`DiscoveredContext`] plus the analysis detail the syntactic pass
/// cannot produce.
#[derive(Debug, Clone)]
pub struct FlowDiscovery {
    /// The same shape the syntactic pass produces — plugs into
    /// `LibrarySpec` unchanged.
    pub context: DiscoveredContext,
    /// Hoisted statements in module order, with fold provenance.
    pub hoisted: Vec<HoistedStmt>,
    /// Global names the residue writes (the `global` declaration a boot
    /// wrapper needs to replay the residue inside a function).
    pub residue_publishes: Vec<String>,
    /// Effect summaries of the work functions and their transitive
    /// helpers.
    pub effects: BTreeMap<String, EffectSummary>,
    /// How many hoisted statements were constant-folded rewrites.
    pub folded: usize,
}

/// Re-materialize a scalar constant as a literal expression.
fn lit_expr(v: &Value) -> Option<Expr> {
    Some(match v {
        Value::None => Expr::None,
        Value::Bool(b) => Expr::Bool(*b),
        Value::Int(i) => Expr::Int(*i),
        Value::Float(f) => Expr::Float(*f),
        Value::Str(s) => Expr::Str(s.to_string()),
        _ => return None,
    })
}

fn fmt_stmt(stmt: &Stmt) -> String {
    format_program(&vec![stmt.clone()]).trim_end().to_string()
}

/// Discover the reusable context of `work_functions` within `module_src`
/// by dataflow analysis. See the module docs for the hoisting rules.
pub fn discover(module_src: &str, work_functions: &[&str]) -> Result<FlowDiscovery> {
    let prog: Program = vine_lang::parse(module_src)?;
    let effects = EffectEnv::compute(&prog);

    let top_defs: Vec<&std::rc::Rc<FuncDef>> = prog
        .iter()
        .filter_map(|s| match &s.kind {
            StmtKind::FuncDef(f) => Some(f),
            _ => None,
        })
        .collect();
    let def_names: BTreeSet<&str> = top_defs.iter().map(|f| f.name.as_str()).collect();
    for w in work_functions {
        if !def_names.contains(w) {
            return Err(VineError::Lang(format!("no function '{w}' in module")));
        }
    }

    // transitive closure over the call graph plus value-reads of function
    // names (passing a function around keeps it needed)
    let mut needed: BTreeSet<String> = BTreeSet::new();
    let mut queue: Vec<String> = work_functions.iter().map(|s| s.to_string()).collect();
    while let Some(f) = queue.pop() {
        if !needed.insert(f.clone()) {
            continue;
        }
        let mut next: BTreeSet<String> = BTreeSet::new();
        if let Some(called) = effects.calls.get(&f) {
            next.extend(called.iter().cloned());
        }
        if let Some(summary) = effects.functions.get(&f) {
            next.extend(summary.reads.iter().cloned());
        }
        for n in next {
            if def_names.contains(n.as_str()) || effects.functions.contains_key(&n) {
                queue.push(n);
            }
        }
    }

    // names the work set may mutate. An unresolvable call or dynamic code
    // inside the work set could write anything: every module name becomes
    // off-limits (the syntactic pass misses this case entirely).
    let mut mutated: BTreeSet<String> = BTreeSet::new();
    let mut work_is_opaque = false;
    for f in &needed {
        if let Some(s) = effects.functions.get(f) {
            mutated.extend(s.writes.iter().cloned());
            work_is_opaque |= s.dynamic || s.calls_unknown;
        }
    }
    if work_is_opaque {
        mutated.extend(effects.module_defs.iter().cloned());
    }

    // classify module-level statements in order
    let mut hoistable_names: BTreeSet<String> = BTreeSet::new();
    let mut hoisted_stmts: Vec<Stmt> = Vec::new();
    let mut hoisted: Vec<HoistedStmt> = Vec::new();
    let mut residue: Vec<String> = Vec::new();
    let mut residue_touched: BTreeSet<String> = BTreeSet::new();
    let mut residue_written: BTreeSet<String> = BTreeSet::new();
    let mut residue_publishes: BTreeSet<String> = BTreeSet::new();
    let mut imports: BTreeSet<String> = BTreeSet::new();
    let mut folded = 0usize;
    // constant environment tracking *original* module execution order
    let mut cenv = ConstEnv::new();
    let no_locals = BTreeSet::new();

    for stmt in &prog {
        if let StmtKind::FuncDef(f) = &stmt.kind {
            // function definitions travel as code, not as context setup
            hoistable_names.insert(f.name.clone());
            const_transfer_stmt(stmt, &mut cenv, &effects, &no_locals);
            continue;
        }
        let eff = effects.stmt_effect(stmt);
        let clean = !eff.io && !eff.dynamic && !eff.calls_unknown;
        let reads_mutated = eff.reads.iter().any(|n| mutated.contains(n));
        let writes_mutated = eff.writes.iter().any(|n| mutated.contains(n));
        // a read of a module name that has not hoisted blocks hoisting —
        // except a name the statement itself binds (a `for` variable, a
        // self-referential rebind): if such a name was touched by residue
        // instead, the writes_residue_touched check below still blocks
        let unhoisted_dep = eff.reads.iter().any(|n| {
            effects.module_defs.contains(n)
                && !hoistable_names.contains(n)
                && !eff.writes.contains(n)
        });
        let writes_residue_touched = eff.writes.iter().any(|n| residue_touched.contains(n));
        // reading a name the residue already *wrote* would observe the
        // pre-residue value once hoisted; names the residue merely read
        // are fine to read again
        let reads_residue_written = eff.reads.iter().any(|n| residue_written.contains(n));

        if clean
            && !reads_mutated
            && !writes_mutated
            && !unhoisted_dep
            && !writes_residue_touched
            && !reads_residue_written
        {
            if let StmtKind::Import(m) = &stmt.kind {
                imports.insert(m.clone());
            }
            hoistable_names.extend(eff.writes.iter().cloned());
            hoisted.push(HoistedStmt {
                source: fmt_stmt(stmt),
                folded_from: None,
            });
            hoisted_stmts.push(stmt.clone());
            const_transfer_stmt(stmt, &mut cenv, &effects, &no_locals);
            continue;
        }

        // fold path: an assignment whose value is a known scalar under the
        // original-order constant environment hoists as that constant,
        // even when its right-hand side reads invocation-mutated or
        // residue state — the value is captured, not the dependency
        if let StmtKind::Assign(Target::Var(x), e) = &stmt.kind {
            let foldable = !mutated.contains(x) && !residue_touched.contains(x);
            // (a fold may READ residue-written names: the constant
            // environment already accounts for those writes)
            if foldable {
                if let CVal::Const(v) = eval_const(e, &cenv) {
                    if scalar(&v) {
                        if let Some(le) = lit_expr(&v) {
                            let rewritten =
                                Stmt::dummy(StmtKind::Assign(Target::Var(x.clone()), le));
                            hoistable_names.insert(x.clone());
                            hoisted.push(HoistedStmt {
                                source: fmt_stmt(&rewritten),
                                folded_from: Some(fmt_stmt(stmt)),
                            });
                            hoisted_stmts.push(rewritten);
                            folded += 1;
                            const_transfer_stmt(stmt, &mut cenv, &effects, &no_locals);
                            continue;
                        }
                    }
                }
            }
        }

        residue.push(fmt_stmt(stmt));
        residue_touched.extend(eff.reads.iter().cloned());
        residue_touched.extend(eff.writes.iter().cloned());
        residue_written.extend(eff.writes.iter().cloned());
        residue_publishes.extend(eff.writes.iter().cloned());
        const_transfer_stmt(stmt, &mut cenv, &effects, &no_locals);
    }

    // imports inside the needed functions are context too
    for f in &top_defs {
        if needed.contains(&f.name) {
            imports.extend(vine_lang::inspect::scan_function_imports(f));
        }
    }

    // synthesize context_setup exactly the way the syntactic pass does
    let mut published: Vec<String> = hoisted_stmts
        .iter()
        .flat_map(|s| effects.stmt_effect(s).writes)
        .collect();
    published.sort();
    published.dedup();
    let provides: Vec<String> = published
        .iter()
        .filter(|n| !imports.contains(*n))
        .cloned()
        .collect();
    let setup = FuncDef::new("context_setup", vec![], {
        let mut body = Vec::new();
        if !published.is_empty() {
            body.push(Stmt::dummy(StmtKind::Global(published)));
        }
        body.extend(hoisted_stmts.iter().cloned());
        body
    });

    let mut code_source = String::new();
    for f in &top_defs {
        if needed.contains(&f.name) {
            code_source.push_str(&format_funcdef(f));
            code_source.push('\n');
        }
    }

    let context = DiscoveredContext {
        setup_source: format_funcdef(&setup),
        provides,
        residue: residue.clone(),
        imports: imports.into_iter().collect(),
        code_source,
    };
    let summaries = needed
        .iter()
        .filter_map(|n| effects.functions.get(n).map(|s| (n.clone(), s.clone())))
        .collect();

    Ok(FlowDiscovery {
        context,
        hoisted,
        residue_publishes: residue_publishes.into_iter().collect(),
        effects: summaries,
        folded,
    })
}
