//! Adversarial edge cases for flow-based discovery: each module hides an
//! invocation-time mutation behind syntax the naive reading misses —
//! augmented assignment (desugared at parse), container writes through a
//! local alias, dynamic code inside an innocuous-looking candidate. In
//! every case the touched binding must stay un-hoisted, and the hoisted
//! form must still execute identically to the original.

use std::collections::BTreeMap;
use vine_lang::{Interp, Value};

/// Execute original vs hoisted-construction module; compare work results,
/// printed output, and the final global namespace.
fn assert_execution_identical(src: &str, work: &str, calls: &[Vec<Value>]) {
    let flow = vine_flow::discover(src, &[work]).unwrap();
    let mut trans = String::new();
    trans.push_str(&flow.context.setup_source);
    let prog = vine_lang::parse(src).unwrap();
    for s in &prog {
        if let vine_lang::ast::StmtKind::FuncDef(f) = &s.kind {
            trans.push_str(&vine_lang::inspect::format_funcdef(f));
        }
    }
    trans.push_str("context_setup()\n");
    for r in &flow.context.residue {
        trans.push_str(r);
        trans.push('\n');
    }

    let run = |text: &str| {
        let mut interp = Interp::new();
        interp.exec_source(text).unwrap();
        let mut results = Vec::new();
        for args in calls {
            results.push(format!("{}", interp.call_global(work, args).unwrap()));
        }
        let globals: BTreeMap<String, String> = interp
            .global_names()
            .into_iter()
            .filter_map(|n| {
                let v = interp.get_global(&n)?;
                if matches!(v, Value::Func(_) | Value::Native(_) | Value::Module(_)) {
                    None
                } else {
                    Some((n, format!("{v}")))
                }
            })
            .collect();
        (results, interp.output.clone(), globals)
    };
    assert_eq!(
        run(src),
        run(&trans),
        "divergence\n--- transformed ---\n{trans}"
    );
}

#[test]
fn augmented_assignment_mutation_blocks_hoisting() {
    // `served += 1` desugars to an Assign at parse time; the effect
    // analysis must still see the write and pin `served = 0` as residue
    let src = r#"
        served = 0
        def work(t) {
            global served
            served += 1
            return served + t
        }
    "#;
    let flow = vine_flow::discover(src, &["work"]).unwrap();
    assert!(
        !flow.context.provides.contains(&"served".to_string()),
        "{:?}",
        flow.context
    );
    assert!(
        flow.context.residue.iter().any(|r| r.contains("served")),
        "{:?}",
        flow.context.residue
    );
    assert_execution_identical(
        src,
        "work",
        &[
            vec![Value::Int(1)],
            vec![Value::Int(2)],
            vec![Value::Int(3)],
        ],
    );
}

#[test]
fn alias_write_blocks_hoisting() {
    // the work function never names `table` in a write position: it takes
    // a local alias and pushes through that. The alias analysis must
    // propagate the write back to `table`.
    let src = r#"
        table = [10, 20]
        def work(t) {
            global table
            handle = table
            push(handle, t)
            return len(table)
        }
    "#;
    let flow = vine_flow::discover(src, &["work"]).unwrap();
    assert!(
        !flow.context.provides.contains(&"table".to_string()),
        "{:?}",
        flow.context
    );
    assert!(
        flow.context.residue.iter().any(|r| r.contains("table")),
        "{:?}",
        flow.context.residue
    );
    assert_execution_identical(src, "work", &[vec![Value::Int(7)], vec![Value::Int(8)]]);
}

#[test]
fn eval_inside_candidate_blocks_hoisting() {
    // the statement looks like pure setup, but eval() can read or write
    // anything: it must stay residue (⊤ treatment), not become context
    let src = r#"
        base = 5
        cfg = eval("base * 2")
        def work(t) {
            return cfg + t
        }
    "#;
    let flow = vine_flow::discover(src, &["work"]).unwrap();
    assert!(
        !flow.context.provides.contains(&"cfg".to_string()),
        "{:?}",
        flow.context
    );
    assert!(
        flow.context.residue.iter().any(|r| r.contains("eval")),
        "{:?}",
        flow.context.residue
    );
    assert_execution_identical(src, "work", &[vec![Value::Int(1)], vec![Value::Int(2)]]);
}
