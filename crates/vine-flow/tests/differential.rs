//! Differential property test: executing a generated module as written
//! must be indistinguishable from executing its flow-hoisted form
//! (synthesized `context_setup` first, then the residue in original
//! order). Observables compared bit-for-bit: every work-function result
//! over several invocations, everything printed, and the final global
//! namespace. This is what licenses `hoist::discover` to reorder a
//! user's module.
//!
//! The generator is adversarial on purpose: helpers that read, write, or
//! print; container mutation through `push` and index-assignment;
//! `for`/`if` statements at module level; statements that read
//! invocation-mutated counters (the constant-folding path); and the
//! occasional `eval` to force the ⊤ treatment.

use proptest::prelude::*;
use std::collections::BTreeMap;
use vine_lang::{Interp, Value};

/// xorshift64* — deterministic per-case source of structure.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed | 1)
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
    fn chance(&mut self, pct: u64) -> bool {
        self.next() % 100 < pct
    }
}

/// Names defined so far, by kind, so generated code never reads an
/// unbound name or mixes types in a comparison.
#[derive(Default)]
struct Defined {
    ints: Vec<String>,
    strs: Vec<String>,
    lists: Vec<String>,
    helpers: Vec<String>,
}

fn int_expr(rng: &mut Rng, env: &Defined, depth: usize) -> String {
    if depth == 0 || env.ints.is_empty() && rng.chance(50) {
        return format!("{}", rng.below(20));
    }
    match rng.below(6) {
        0 => format!("{}", rng.below(20)),
        1 if !env.ints.is_empty() => env.ints[rng.below(env.ints.len())].clone(),
        2 if !env.lists.is_empty() => format!("len({})", env.lists[rng.below(env.lists.len())]),
        3 => format!(
            "({} + {})",
            int_expr(rng, env, depth - 1),
            int_expr(rng, env, depth - 1)
        ),
        4 => format!("({} * {})", int_expr(rng, env, depth - 1), rng.below(5)),
        _ => format!(
            "({} - {})",
            int_expr(rng, env, depth - 1),
            int_expr(rng, env, depth - 1)
        ),
    }
}

fn str_expr(rng: &mut Rng, env: &Defined, depth: usize) -> String {
    if depth == 0 || env.strs.is_empty() {
        return format!("\"s{}\"", rng.below(8));
    }
    match rng.below(3) {
        0 => format!("\"s{}\"", rng.below(8)),
        1 => env.strs[rng.below(env.strs.len())].clone(),
        _ => format!(
            "({} + {})",
            str_expr(rng, env, depth - 1),
            str_expr(rng, env, depth - 1)
        ),
    }
}

fn cond_expr(rng: &mut Rng, env: &Defined) -> String {
    match rng.below(3) {
        0 => format!("{} < {}", int_expr(rng, env, 1), int_expr(rng, env, 1)),
        1 => format!("{} == {}", int_expr(rng, env, 1), int_expr(rng, env, 1)),
        _ => if rng.chance(50) { "true" } else { "false" }.to_string(),
    }
}

/// One generated module: source text plus the work function name.
fn gen_module(seed: u64) -> String {
    let mut rng = Rng::new(seed);
    let mut env = Defined::default();
    let mut out = String::new();
    let mut helper_id = 0usize;

    let n_stmts = 5 + rng.below(8);
    for i in 0..n_stmts {
        match rng.below(10) {
            // scalar int global
            0 | 1 => {
                let name = format!("g{i}");
                out.push_str(&format!("{name} = {}\n", int_expr(&mut rng, &env, 2)));
                env.ints.push(name);
            }
            // string global
            2 => {
                let name = format!("s{i}");
                out.push_str(&format!("{name} = {}\n", str_expr(&mut rng, &env, 1)));
                env.strs.push(name);
            }
            // list init
            3 => {
                let name = format!("l{i}");
                out.push_str(&format!(
                    "{name} = [{}, {}]\n",
                    int_expr(&mut rng, &env, 1),
                    int_expr(&mut rng, &env, 1)
                ));
                env.lists.push(name);
            }
            // push into an existing list
            4 if !env.lists.is_empty() => {
                let l = env.lists[rng.below(env.lists.len())].clone();
                out.push_str(&format!("push({l}, {})\n", int_expr(&mut rng, &env, 1)));
            }
            // index-assign into an existing list (index 0/1 always valid)
            5 if !env.lists.is_empty() => {
                let l = env.lists[rng.below(env.lists.len())].clone();
                out.push_str(&format!(
                    "{l}[{}] = {}\n",
                    rng.below(2),
                    int_expr(&mut rng, &env, 1)
                ));
            }
            // module-level loop building a table
            6 => {
                let name = format!("t{i}");
                out.push_str(&format!(
                    "{name} = []\nfor i{i} in range({}) {{\n    push({name}, i{i} * {})\n}}\n",
                    2 + rng.below(4),
                    1 + rng.below(3)
                ));
                env.lists.push(name);
            }
            // branch at module level; sometimes it reassigns an existing
            // int (the compound-statement havoc case for constant folding)
            7 => {
                let name = if !env.ints.is_empty() && rng.chance(40) {
                    env.ints[rng.below(env.ints.len())].clone()
                } else {
                    let fresh = format!("b{i}");
                    env.ints.push(fresh.clone());
                    fresh
                };
                out.push_str(&format!(
                    "if {} {{\n    {name} = {}\n}} else {{\n    {name} = {}\n}}\n",
                    cond_expr(&mut rng, &env),
                    int_expr(&mut rng, &env, 1),
                    int_expr(&mut rng, &env, 1)
                ));
            }
            // observable output
            8 => {
                out.push_str(&format!("print({})\n", int_expr(&mut rng, &env, 1)));
            }
            // helper definition (pure / reading / writing / printing / eval)
            _ => {
                let name = format!("h{helper_id}");
                helper_id += 1;
                let body = match rng.below(5) {
                    0 => format!("    return a + {}\n", int_expr(&mut rng, &env, 1)),
                    1 if !env.ints.is_empty() => {
                        let g = &env.ints[rng.below(env.ints.len())];
                        format!("    return a * {g}\n")
                    }
                    2 if !env.ints.is_empty() => {
                        let g = env.ints[rng.below(env.ints.len())].clone();
                        format!("    global {g}\n    {g} = {g} + a\n    return {g}\n")
                    }
                    3 => "    print(a)\n    return a\n".to_string(),
                    _ => "    return eval(\"3 + 4\") + a\n".to_string(),
                };
                out.push_str(&format!("def {name}(a) {{\n{body}}}\n"));
                env.helpers.push(name);
            }
        }
    }
    // a derived statement reading earlier state: the fold candidate
    if !env.ints.is_empty() {
        let g = env.ints[rng.below(env.ints.len())].clone();
        out.push_str(&format!("derived = {g} + {}\n", 100 + rng.below(100)));
        env.ints.push("derived".into());
    }

    // the work function: reads state, sometimes mutates it, sometimes
    // calls helpers, sometimes appends to a list
    let mut body = String::new();
    if !env.ints.is_empty() && rng.chance(60) {
        let g = env.ints[rng.below(env.ints.len())].clone();
        body.push_str(&format!("    global {g}\n    {g} = {g} + t\n"));
    }
    if !env.lists.is_empty() && rng.chance(40) {
        let l = env.lists[rng.below(env.lists.len())].clone();
        body.push_str(&format!("    push({l}, t)\n"));
    }
    let mut ret = int_expr(&mut rng, &env, 2);
    if !env.helpers.is_empty() && rng.chance(60) {
        let h = env.helpers[rng.below(env.helpers.len())].clone();
        ret = format!("{h}({ret})");
    }
    body.push_str(&format!("    return {ret} + t\n"));
    out.push_str(&format!("def work(t) {{\n{body}}}\n"));
    out
}

/// Results, printed output, and final globals of one module execution.
type Observed = (Vec<String>, Vec<String>, BTreeMap<String, String>);

/// Run a module plus three work invocations; capture every observable.
fn run(src: &str) -> std::result::Result<Observed, String> {
    let mut interp = Interp::new();
    interp.exec_source(src).map_err(|e| e.to_string())?;
    let mut results = Vec::new();
    for t in 0..3i64 {
        let v = interp
            .call_global("work", &[Value::Int(t)])
            .map_err(|e| e.to_string())?;
        results.push(format!("{v}"));
    }
    let globals: BTreeMap<String, String> = interp
        .global_names()
        .into_iter()
        .filter_map(|n| {
            let v = interp.get_global(&n)?;
            if matches!(v, Value::Func(_) | Value::Native(_) | Value::Module(_)) {
                None
            } else {
                Some((n, format!("{v}")))
            }
        })
        .collect();
    Ok((results, interp.output.clone(), globals))
}

fn check_case(seed: u64) -> std::result::Result<(), proptest::test_runner::TestCaseError> {
    let src = gen_module(seed);
    let flow = vine_flow::discover(&src, &["work"])
        .map_err(|e| proptest::test_runner::TestCaseError::fail(format!("discover: {e}\n{src}")))?;

    // transformed module: setup definition, every function definition,
    // boot (setup call), then the residue in original order
    let prog = vine_lang::parse(&src).unwrap();
    let mut trans = String::new();
    trans.push_str(&flow.context.setup_source);
    for s in &prog {
        if let vine_lang::StmtKind::FuncDef(f) = &s.kind {
            trans.push_str(&vine_lang::inspect::format_funcdef(f));
        }
    }
    trans.push_str("context_setup()\n");
    for r in &flow.context.residue {
        trans.push_str(r);
        trans.push('\n');
    }

    match (run(&src), run(&trans)) {
        (Ok(orig), Ok(hoisted)) => {
            if orig != hoisted {
                return Err(proptest::test_runner::TestCaseError::fail(format!(
                    "observable divergence\n--- original ---\n{src}\n--- transformed ---\n{trans}\n\
                     --- original observables ---\n{orig:?}\n--- transformed observables ---\n{hoisted:?}"
                )));
            }
        }
        (Err(e1), Err(_e2)) => {
            // both error (a generated program can still divide-by-zero its
            // way into the weeds); that they *both* refuse is agreement
            let _ = e1;
        }
        (Ok(_), Err(e)) => {
            return Err(proptest::test_runner::TestCaseError::fail(format!(
                "original runs but transformed errors: {e}\n--- original ---\n{src}\n--- transformed ---\n{trans}"
            )));
        }
        (Err(e), Ok(_)) => {
            return Err(proptest::test_runner::TestCaseError::fail(format!(
                "transformed runs but original errors: {e}\n--- original ---\n{src}"
            )));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn flow_hoisted_execution_is_bit_identical(seed in any::<u64>()) {
        check_case(seed)?;
    }
}
