//! Environment archives: the conda-pack tarball analogue.
//!
//! An archive is a content-addressed manifest of a resolved environment.
//! Its `packed_bytes` is what the distribute mechanism moves over the
//! network; its `unpacked_bytes` is what a worker's unpack step writes to
//! local disk (at ~200 MB/s per the paper's Table 5 worker overhead); its
//! `file_count` drives the metadata-operation cost of L1's shared-FS
//! imports.

use crate::registry::Version;
use crate::resolve::Resolution;
use serde::{Deserialize, Serialize};
use vine_core::ids::ContentHash;

/// A packed environment: identity, contents and exact sizes.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EnvironmentArchive {
    pub name: String,
    /// (package, version) pairs in install order.
    pub packages: Vec<(String, Version)>,
    pub packed_bytes: u64,
    pub unpacked_bytes: u64,
    pub file_count: u64,
    /// Modules the activated environment provides to vine-lang.
    pub provided_modules: Vec<String>,
    /// Content digest over the full manifest: archives with identical
    /// contents are the *same file* to the data plane, so a worker that
    /// already caches one environment never re-fetches an identical one
    /// built elsewhere.
    pub hash: ContentHash,
}

/// Pack a resolution into an archive (conda-pack).
pub fn pack(name: impl Into<String>, resolution: &Resolution) -> EnvironmentArchive {
    let name = name.into();
    let packages: Vec<(String, Version)> = resolution
        .packages
        .iter()
        .map(|p| (p.name.clone(), p.version))
        .collect();

    // digest covers package identities and sizes — not the archive name, so
    // two libraries that resolve the same environment share one cached copy
    let mut h = ContentHash::of_str("env-archive-v1");
    for p in &resolution.packages {
        h = h.combine(ContentHash::of_str(&format!(
            "{}@{}:{}:{}:{}",
            p.name, p.version, p.packed_bytes, p.unpacked_bytes, p.file_count
        )));
    }

    EnvironmentArchive {
        name,
        packages,
        packed_bytes: resolution.packed_bytes(),
        unpacked_bytes: resolution.unpacked_bytes(),
        file_count: resolution.file_count(),
        provided_modules: resolution
            .provided_modules()
            .into_iter()
            .map(str::to_string)
            .collect(),
        hash: h,
    }
}

impl EnvironmentArchive {
    /// Does the activated environment provide this vine-lang module?
    pub fn provides(&self, module: &str) -> bool {
        self.provided_modules.iter().any(|m| m == module)
    }

    pub fn package_count(&self) -> usize {
        self.packages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{PackageRegistry, PackageSpec, Requirement};
    use crate::resolve::resolve;

    fn v(s: &str) -> Version {
        Version::parse(s).unwrap()
    }

    fn make_resolution(extra_pkg: bool) -> Resolution {
        let mut reg = PackageRegistry::new();
        reg.add(
            PackageSpec::new("nn", v("1.0.0"))
                .with_sizes(1000, 5000, 20)
                .with_deps(vec![Requirement::any("blas")]),
        );
        reg.add(
            PackageSpec::new("blas", v("3.0.0"))
                .with_sizes(500, 2000, 10)
                .no_module(),
        );
        if extra_pkg {
            reg.add(PackageSpec::new("extra", v("1.0.0")));
        }
        let mut reqs = vec![Requirement::any("nn")];
        if extra_pkg {
            reqs.push(Requirement::any("extra"));
        }
        resolve(&reg, &reqs).unwrap()
    }

    #[test]
    fn pack_accumulates_sizes() {
        let archive = pack("lnni-env", &make_resolution(false));
        assert_eq!(archive.packed_bytes, 1500);
        assert_eq!(archive.unpacked_bytes, 7000);
        assert_eq!(archive.file_count, 30);
        assert_eq!(archive.package_count(), 2);
        assert!(archive.provides("nn"));
        assert!(!archive.provides("blas")); // no_module
    }

    #[test]
    fn identical_contents_share_identity_despite_name() {
        let a = pack("env-a", &make_resolution(false));
        let b = pack("env-b", &make_resolution(false));
        assert_eq!(a.hash, b.hash);
        let c = pack("env-a", &make_resolution(true));
        assert_ne!(a.hash, c.hash);
    }

    #[test]
    fn install_order_preserved() {
        let archive = pack("env", &make_resolution(false));
        let names: Vec<&str> = archive.packages.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["blas", "nn"]);
    }
}
