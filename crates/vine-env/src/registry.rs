//! Versioned package registry.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use vine_core::{Result, VineError};

/// A semantic-ish version: major.minor.patch.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default)]
pub struct Version(pub u32, pub u32, pub u32);

impl Version {
    pub fn parse(s: &str) -> Result<Version> {
        let mut parts = s.split('.');
        let mut next = |what: &str| -> Result<u32> {
            parts
                .next()
                .ok_or_else(|| VineError::Dependency(format!("version '{s}' missing {what}")))?
                .parse()
                .map_err(|_| VineError::Dependency(format!("bad version component in '{s}'")))
        };
        let v = Version(next("major")?, next("minor")?, next("patch")?);
        if parts.next().is_some() {
            return Err(VineError::Dependency(format!(
                "version '{s}' has too many components"
            )));
        }
        Ok(v)
    }
}

impl fmt::Display for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}.{}", self.0, self.1, self.2)
    }
}

impl fmt::Debug for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

/// A version constraint. The paper notes users may provide dependency
/// specifications "with or without versions specified"; `Any` covers the
/// without case.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Constraint {
    Any,
    Exact(Version),
    AtLeast(Version),
}

impl Constraint {
    pub fn satisfied_by(&self, v: Version) -> bool {
        match self {
            Constraint::Any => true,
            Constraint::Exact(want) => v == *want,
            Constraint::AtLeast(min) => v >= *min,
        }
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Constraint::Any => write!(f, "*"),
            Constraint::Exact(v) => write!(f, "=={v}"),
            Constraint::AtLeast(v) => write!(f, ">={v}"),
        }
    }
}

/// One dependency requirement: a package name plus a constraint.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Requirement {
    pub name: String,
    pub constraint: Constraint,
}

impl Requirement {
    pub fn any(name: impl Into<String>) -> Requirement {
        Requirement {
            name: name.into(),
            constraint: Constraint::Any,
        }
    }

    pub fn exact(name: impl Into<String>, v: Version) -> Requirement {
        Requirement {
            name: name.into(),
            constraint: Constraint::Exact(v),
        }
    }

    pub fn at_least(name: impl Into<String>, v: Version) -> Requirement {
        Requirement {
            name: name.into(),
            constraint: Constraint::AtLeast(v),
        }
    }
}

impl fmt::Display for Requirement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.name, self.constraint)
    }
}

/// One installable package version.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PackageSpec {
    pub name: String,
    pub version: Version,
    pub deps: Vec<Requirement>,
    /// Size on disk once installed.
    pub unpacked_bytes: u64,
    /// Contribution to a packed environment archive.
    pub packed_bytes: u64,
    /// Number of files the package installs (drives metadata-IOPS costs of
    /// importing over a shared filesystem).
    pub file_count: u32,
    /// vine-lang module this package provides, if any (many packages are
    /// pure transitive dependencies providing none).
    pub provides_module: Option<String>,
}

impl PackageSpec {
    pub fn new(name: impl Into<String>, version: Version) -> PackageSpec {
        let name = name.into();
        PackageSpec {
            provides_module: Some(name.clone()),
            name,
            version,
            deps: Vec::new(),
            unpacked_bytes: 1 << 20,
            packed_bytes: 256 << 10,
            file_count: 50,
        }
    }

    pub fn with_deps(mut self, deps: Vec<Requirement>) -> PackageSpec {
        self.deps = deps;
        self
    }

    pub fn with_sizes(mut self, packed: u64, unpacked: u64, files: u32) -> PackageSpec {
        self.packed_bytes = packed;
        self.unpacked_bytes = unpacked;
        self.file_count = files;
        self
    }

    pub fn no_module(mut self) -> PackageSpec {
        self.provides_module = None;
        self
    }
}

/// All known packages, all versions.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct PackageRegistry {
    packages: BTreeMap<String, BTreeMap<Version, PackageSpec>>,
}

impl PackageRegistry {
    pub fn new() -> PackageRegistry {
        PackageRegistry::default()
    }

    pub fn add(&mut self, spec: PackageSpec) {
        self.packages
            .entry(spec.name.clone())
            .or_default()
            .insert(spec.version, spec);
    }

    pub fn versions_of(&self, name: &str) -> impl Iterator<Item = &PackageSpec> {
        self.packages.get(name).into_iter().flat_map(|m| m.values())
    }

    /// The highest version of `name` satisfying all of `constraints`.
    pub fn best_match(&self, name: &str, constraints: &[Constraint]) -> Option<&PackageSpec> {
        self.packages
            .get(name)?
            .values()
            .rev()
            .find(|spec| constraints.iter().all(|c| c.satisfied_by(spec.version)))
    }

    pub fn get(&self, name: &str, version: Version) -> Option<&PackageSpec> {
        self.packages.get(name)?.get(&version)
    }

    pub fn contains(&self, name: &str) -> bool {
        self.packages.contains_key(name)
    }

    pub fn package_count(&self) -> usize {
        self.packages.values().map(|m| m.len()).sum()
    }

    /// Every vine-lang module name some version of some package provides.
    /// Pre-flight analysis unions this with the native module registry to
    /// decide whether an `import` can ever be satisfied.
    pub fn provided_modules(&self) -> impl Iterator<Item = &str> {
        self.packages
            .values()
            .flat_map(|m| m.values())
            .filter_map(|spec| spec.provides_module.as_deref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &str) -> Version {
        Version::parse(s).unwrap()
    }

    #[test]
    fn version_parse_and_order() {
        assert_eq!(v("1.2.3"), Version(1, 2, 3));
        assert!(v("1.10.0") > v("1.9.9"));
        assert!(v("2.0.0") > v("1.99.99"));
        assert!(Version::parse("1.2").is_err());
        assert!(Version::parse("1.2.3.4").is_err());
        assert!(Version::parse("a.b.c").is_err());
        assert_eq!(v("1.2.3").to_string(), "1.2.3");
    }

    #[test]
    fn constraint_satisfaction() {
        assert!(Constraint::Any.satisfied_by(v("0.0.1")));
        assert!(Constraint::Exact(v("1.2.3")).satisfied_by(v("1.2.3")));
        assert!(!Constraint::Exact(v("1.2.3")).satisfied_by(v("1.2.4")));
        assert!(Constraint::AtLeast(v("1.2.3")).satisfied_by(v("1.2.3")));
        assert!(Constraint::AtLeast(v("1.2.3")).satisfied_by(v("2.0.0")));
        assert!(!Constraint::AtLeast(v("1.2.3")).satisfied_by(v("1.2.2")));
    }

    #[test]
    fn best_match_prefers_highest_satisfying() {
        let mut reg = PackageRegistry::new();
        for ver in ["1.0.0", "1.5.0", "2.0.0"] {
            reg.add(PackageSpec::new("numpy", v(ver)));
        }
        assert_eq!(reg.best_match("numpy", &[]).unwrap().version, v("2.0.0"));
        assert_eq!(
            reg.best_match("numpy", &[Constraint::AtLeast(v("1.2.0"))])
                .unwrap()
                .version,
            v("2.0.0")
        );
        assert_eq!(
            reg.best_match(
                "numpy",
                &[
                    Constraint::AtLeast(v("1.2.0")),
                    Constraint::Exact(v("1.5.0"))
                ]
            )
            .unwrap()
            .version,
            v("1.5.0")
        );
        assert!(reg
            .best_match("numpy", &[Constraint::AtLeast(v("3.0.0"))])
            .is_none());
        assert!(reg.best_match("pandas", &[]).is_none());
    }

    #[test]
    fn registry_counts() {
        let mut reg = PackageRegistry::new();
        reg.add(PackageSpec::new("a", v("1.0.0")));
        reg.add(PackageSpec::new("a", v("2.0.0")));
        reg.add(PackageSpec::new("b", v("1.0.0")));
        // re-adding same version replaces, not duplicates
        reg.add(PackageSpec::new("b", v("1.0.0")));
        assert_eq!(reg.package_count(), 3);
        assert!(reg.contains("a"));
        assert!(!reg.contains("c"));
    }

    #[test]
    fn provided_modules_skips_moduleless_packages() {
        let mut reg = PackageRegistry::new();
        reg.add(PackageSpec::new("numpyish", v("1.0.0")));
        reg.add(PackageSpec::new("libfoo", v("1.0.0")).no_module());
        let mods: Vec<&str> = reg.provided_modules().collect();
        assert_eq!(mods, vec!["numpyish"]);
    }

    #[test]
    fn requirement_display() {
        assert_eq!(Requirement::any("x").to_string(), "x*");
        assert_eq!(Requirement::exact("x", v("1.0.0")).to_string(), "x==1.0.0");
        assert_eq!(
            Requirement::at_least("x", v("1.0.0")).to_string(),
            "x>=1.0.0"
        );
    }
}
