//! A synthetic package universe calibrated to the paper's applications.
//!
//! The paper reports that LNNI's software dependencies "contain 144 Python
//! packages and amount to 3.1 GBs of disk size in the reusable format and
//! 572 MBs when tarballed" (Table 5 discussion). [`standard_registry`]
//! contains a deterministic package DAG whose LNNI closure reproduces those
//! numbers *exactly*; sizes of individual packages follow a skewed
//! distribution (a few giant native packages, a long tail of small pure
//! ones), like a real Conda environment.
//!
//! ExaMol's environment (Scikit-Learn, RDKit, OpenMOPAC, Colmena — §4.1.2)
//! has no published size; we assume a comparable scientific stack: 121
//! packages, 460 MB packed, 2.6 GB unpacked. Recorded as a substitution in
//! DESIGN.md.

use crate::registry::{PackageRegistry, PackageSpec, Requirement, Version};

/// LNNI package-count target (paper Table 5 discussion).
pub const LNNI_PACKAGE_COUNT: usize = 144;
/// LNNI packed environment size: 572 MB.
pub const LNNI_PACKED_BYTES: u64 = 572_000_000;
/// LNNI unpacked environment size: 3.1 GB.
pub const LNNI_UNPACKED_BYTES: u64 = 3_100_000_000;
/// Files in the unpacked LNNI environment (drives L1 import-storm IOPS).
pub const LNNI_FILE_COUNT: u64 = 62_000;

/// Assumed ExaMol environment (not published; see module docs).
pub const EXAMOL_PACKAGE_COUNT: usize = 121;
pub const EXAMOL_PACKED_BYTES: u64 = 460_000_000;
pub const EXAMOL_UNPACKED_BYTES: u64 = 2_600_000_000;
pub const EXAMOL_FILE_COUNT: u64 = 48_000;

fn v1() -> Version {
    Version(1, 0, 0)
}

/// Deterministic size weight for the i-th dependency package: a skewed
/// distribution where low indices are heavyweight native packages.
fn weight(i: usize) -> u64 {
    match i {
        0 => 400,
        1 => 250,
        2 => 180,
        3 => 120,
        4..=9 => 60,
        10..=29 => 20,
        _ => 4,
    }
}

/// Build a dependency stack: `root` depends on the first `fanout` deps;
/// dep `i` depends on deps `2i+1` and `2i+2` (a binary tree, guaranteeing
/// acyclicity). Package sizes are fixed up so closure totals hit the
/// targets exactly.
#[allow(clippy::too_many_arguments)]
fn add_stack(
    reg: &mut PackageRegistry,
    root: &str,
    dep_prefix: &str,
    total_packages: usize,
    packed_total: u64,
    unpacked_total: u64,
    file_total: u64,
    extra_root_deps: Vec<Requirement>,
) {
    assert!(total_packages >= 2);
    let dep_count = total_packages - 1;
    let weights: Vec<u64> = (0..dep_count).map(weight).collect();
    let wsum: u64 = weights.iter().sum();

    // reserve a root share, distribute the rest by weight, then give all
    // rounding residue to the root so totals are exact
    let root_packed = packed_total / 20;
    let root_unpacked = unpacked_total / 20;
    let root_files = file_total / 20;

    let mut packed_used = 0u64;
    let mut unpacked_used = 0u64;
    let mut files_used = 0u64;

    for (i, &wt) in weights.iter().enumerate() {
        let packed = (packed_total - root_packed) * wt / wsum;
        let unpacked = (unpacked_total - root_unpacked) * wt / wsum;
        let files = ((file_total - root_files) * wt / wsum).max(1);
        packed_used += packed;
        unpacked_used += unpacked;
        files_used += files;

        let mut deps = Vec::new();
        for child in [2 * i + 1, 2 * i + 2] {
            if child < dep_count {
                deps.push(Requirement::any(format!("{dep_prefix}-{child:03}")));
            }
        }
        reg.add(
            PackageSpec::new(format!("{dep_prefix}-{i:03}"), v1())
                .with_sizes(packed, unpacked, files as u32)
                .with_deps(deps)
                .no_module(),
        );
    }

    let mut root_deps: Vec<Requirement> = vec![Requirement::any(format!("{dep_prefix}-000"))];
    root_deps.extend(extra_root_deps);
    reg.add(
        PackageSpec::new(root, v1())
            .with_sizes(
                packed_total - packed_used,
                unpacked_total - unpacked_used,
                (file_total - files_used) as u32,
            )
            .with_deps(root_deps),
    );
}

/// The full synthetic universe: the LNNI stack (rooted at `nn`), the ExaMol
/// stack (rooted at `chemml`, with `rdkitx`/`sklearnx`/`mopacx` module
/// providers inside), and a few standalone utility packages.
pub fn standard_registry() -> PackageRegistry {
    let mut reg = PackageRegistry::new();

    // LNNI: `nn` + 143 deps
    add_stack(
        &mut reg,
        "nn",
        "nndep",
        LNNI_PACKAGE_COUNT,
        LNNI_PACKED_BYTES,
        LNNI_UNPACKED_BYTES,
        LNNI_FILE_COUNT,
        vec![],
    );

    // ExaMol: `chemml` meta-package + module-providing roots + 117 deps.
    // 121 total = chemml + rdkitx + sklearnx + mopacx + 117 chemdep deps.
    add_stack(
        &mut reg,
        "chemml",
        "chemdep",
        EXAMOL_PACKAGE_COUNT - 3,
        EXAMOL_PACKED_BYTES - 3_000_000,
        EXAMOL_UNPACKED_BYTES - 30_000_000,
        EXAMOL_FILE_COUNT - 600,
        vec![
            Requirement::any("rdkitx"),
            Requirement::any("sklearnx"),
            Requirement::any("mopacx"),
        ],
    );
    for module_pkg in ["rdkitx", "sklearnx", "mopacx"] {
        reg.add(PackageSpec::new(module_pkg, v1()).with_sizes(1_000_000, 10_000_000, 200));
    }

    // standalone utilities usable by examples and tests
    reg.add(PackageSpec::new("mathx", v1()).with_sizes(100_000, 400_000, 20));
    reg.add(PackageSpec::new("jsonx", v1()).with_sizes(80_000, 300_000, 15));
    reg.add(
        PackageSpec::new("dataframex", Version(2, 1, 0))
            .with_sizes(40_000_000, 160_000_000, 3_000)
            .with_deps(vec![Requirement::any("mathx")]),
    );
    reg.add(
        PackageSpec::new("dataframex", Version(1, 4, 2))
            .with_sizes(30_000_000, 120_000_000, 2_500)
            .with_deps(vec![Requirement::any("mathx")]),
    );

    reg
}

/// Requirements the LNNI inference function's import scan produces.
pub fn lnni_requirements() -> Vec<Requirement> {
    vec![Requirement::any("nn")]
}

/// Requirements the ExaMol task functions' import scans produce.
pub fn examol_requirements() -> Vec<Requirement> {
    vec![Requirement::any("chemml")]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::archive::pack;
    use crate::resolve::resolve;

    #[test]
    fn lnni_environment_matches_paper_exactly() {
        let reg = standard_registry();
        let res = resolve(&reg, &lnni_requirements()).unwrap();
        assert_eq!(
            res.packages.len(),
            LNNI_PACKAGE_COUNT,
            "paper: 144 packages"
        );
        assert_eq!(
            res.packed_bytes(),
            LNNI_PACKED_BYTES,
            "paper: 572 MB packed"
        );
        assert_eq!(
            res.unpacked_bytes(),
            LNNI_UNPACKED_BYTES,
            "paper: 3.1 GB unpacked"
        );
        assert_eq!(res.file_count(), LNNI_FILE_COUNT);
        let archive = pack("lnni-env", &res);
        assert!(archive.provides("nn"));
    }

    #[test]
    fn examol_environment_matches_assumption() {
        let reg = standard_registry();
        let res = resolve(&reg, &examol_requirements()).unwrap();
        assert_eq!(res.packages.len(), EXAMOL_PACKAGE_COUNT);
        assert_eq!(res.packed_bytes(), EXAMOL_PACKED_BYTES);
        assert_eq!(res.unpacked_bytes(), EXAMOL_UNPACKED_BYTES);
        let archive = pack("examol-env", &res);
        for m in ["chemml", "rdkitx", "sklearnx", "mopacx"] {
            assert!(archive.provides(m), "missing module {m}");
        }
    }

    #[test]
    fn stacks_are_disjoint() {
        let reg = standard_registry();
        let lnni = resolve(&reg, &lnni_requirements()).unwrap();
        let examol = resolve(&reg, &examol_requirements()).unwrap();
        for p in &lnni.packages {
            assert!(
                !examol.contains(&p.name),
                "{} appears in both environments",
                p.name
            );
        }
    }

    #[test]
    fn registry_is_deterministic() {
        let a = standard_registry();
        let b = standard_registry();
        let ra = resolve(&a, &lnni_requirements()).unwrap();
        let rb = resolve(&b, &lnni_requirements()).unwrap();
        assert_eq!(ra, rb);
        assert_eq!(
            pack("e", &ra).hash,
            pack("e", &rb).hash,
            "same contents must produce same archive identity"
        );
    }

    #[test]
    fn size_distribution_is_skewed() {
        let reg = standard_registry();
        let res = resolve(&reg, &lnni_requirements()).unwrap();
        let mut sizes: Vec<u64> = res.packages.iter().map(|p| p.unpacked_bytes).collect();
        sizes.sort_unstable();
        let top10: u64 = sizes.iter().rev().take(10).sum();
        let total: u64 = sizes.iter().sum();
        // a handful of native packages dominate, like a real ML environment
        assert!(
            top10 * 2 > total,
            "top-10 packages should exceed half the environment ({top10}/{total})"
        );
        // while the median package is tiny
        let median = sizes[sizes.len() / 2];
        assert!(median * 100 < total, "median {median} vs total {total}");
    }

    #[test]
    fn dataframex_has_two_versions() {
        let reg = standard_registry();
        let newest = reg.best_match("dataframex", &[]).unwrap();
        assert_eq!(newest.version, Version(2, 1, 0));
        let res = resolve(&reg, &[Requirement::exact("dataframex", Version(1, 4, 2))]).unwrap();
        assert!(res.contains("mathx"));
        assert_eq!(
            res.packages
                .iter()
                .find(|p| p.name == "dataframex")
                .unwrap()
                .version,
            Version(1, 4, 2)
        );
    }
}
