//! # vine-env
//!
//! The software-dependency element of a function context (paper §2.2.1,
//! §3.2): given the modules a function imports (discovered by
//! `vine_lang::inspect::scan_imports`), resolve them against a versioned
//! [`registry::PackageRegistry`], compute the transitive closure in install
//! order, and [`archive::pack`] the result into an environment archive — a
//! content-addressed, fixed-size artifact that the distribute mechanism
//! ships and workers unpack once into their cache.
//!
//! This is the Rust stand-in for the paper's Poncho → Conda → conda-pack
//! pipeline ("scan their ASTs for imported modules, create a local Conda
//! environment containing these modules with versions resolved, and package
//! the environment into a specially formatted tarball").
//!
//! Archives are *manifests*, not real byte payloads: every size and file
//! count is tracked exactly (so transfer and unpack costs are faithful) but
//! 3.1 GB of synthetic package bytes are never materialized. The
//! [`catalog`] module provides a synthetic package universe calibrated to
//! the paper's LNNI environment: 144 packages, 572 MB packed, 3.1 GB
//! unpacked.

pub mod archive;
pub mod catalog;
pub mod registry;
pub mod resolve;

pub use archive::{pack, EnvironmentArchive};
pub use registry::{Constraint, PackageRegistry, PackageSpec, Requirement, Version};
pub use resolve::{resolve, Resolution};
