//! Dependency resolution: requirements → transitive closure in install
//! order, with version selection, conflict detection, and cycle rejection.

use crate::registry::{Constraint, PackageRegistry, PackageSpec, Requirement, Version};
use std::collections::BTreeMap;
use vine_core::{Result, VineError};

/// A resolved environment: concrete package versions in install order
/// (every package appears after all of its dependencies).
#[derive(Clone, Debug, PartialEq)]
pub struct Resolution {
    pub packages: Vec<PackageSpec>,
}

impl Resolution {
    pub fn unpacked_bytes(&self) -> u64 {
        self.packages.iter().map(|p| p.unpacked_bytes).sum()
    }

    pub fn packed_bytes(&self) -> u64 {
        self.packages.iter().map(|p| p.packed_bytes).sum()
    }

    pub fn file_count(&self) -> u64 {
        self.packages.iter().map(|p| p.file_count as u64).sum()
    }

    /// Names of the vine-lang modules this environment provides.
    pub fn provided_modules(&self) -> Vec<&str> {
        self.packages
            .iter()
            .filter_map(|p| p.provides_module.as_deref())
            .collect()
    }

    pub fn contains(&self, name: &str) -> bool {
        self.packages.iter().any(|p| p.name == name)
    }
}

/// Resolve `requirements` against `registry`.
///
/// Strategy: iterate to a fixpoint. Each round accumulates all constraints
/// reachable from the roots (taking each package's dependency list from its
/// currently-best-matching version), then re-selects versions. Because a
/// newly discovered constraint can demote a previously chosen version —
/// whose dependency list may differ — rounds repeat until stable, with a
/// cap to guarantee termination. Finally the chosen set is ordered
/// topologically; dependency cycles are rejected (install order would be
/// undefined).
pub fn resolve(registry: &PackageRegistry, requirements: &[Requirement]) -> Result<Resolution> {
    const MAX_ROUNDS: usize = 64;

    let mut chosen: BTreeMap<String, Version> = BTreeMap::new();
    for _round in 0..MAX_ROUNDS {
        // gather constraints by walking from the roots through the deps of
        // currently chosen (or freshly best-matched) versions
        let mut constraints: BTreeMap<String, Vec<Constraint>> = BTreeMap::new();
        let mut queue: Vec<Requirement> = requirements.to_vec();
        let mut seen_edges = 0usize;
        while let Some(req) = queue.pop() {
            seen_edges += 1;
            if seen_edges > 100_000 {
                return Err(VineError::Dependency(
                    "dependency graph too large (possible constraint oscillation)".into(),
                ));
            }
            let entry = constraints.entry(req.name.clone()).or_default();
            let first_visit = entry.is_empty();
            if !entry.contains(&req.constraint) {
                entry.push(req.constraint);
            }
            if first_visit {
                let cs = constraints[&req.name].clone();
                // expand the version selected in the previous round if it
                // still satisfies what we know — this is what lets a later
                // round correct a dependency set discovered under a version
                // that other constraints then demoted
                let spec = match chosen.get(&req.name) {
                    Some(ver) if cs.iter().all(|c| c.satisfied_by(*ver)) => registry
                        .get(&req.name, *ver)
                        .ok_or_else(|| unsatisfiable(registry, &req.name, &cs))?,
                    _ => registry
                        .best_match(&req.name, &cs)
                        .ok_or_else(|| unsatisfiable(registry, &req.name, &cs))?,
                };
                queue.extend(spec.deps.iter().cloned());
            }
        }

        // select versions under the full constraint sets
        let mut next: BTreeMap<String, Version> = BTreeMap::new();
        for (name, cs) in &constraints {
            let spec = registry
                .best_match(name, cs)
                .ok_or_else(|| unsatisfiable(registry, name, cs))?;
            next.insert(name.clone(), spec.version);
        }

        if next == chosen {
            return topo_order(registry, &chosen);
        }
        chosen = next;
    }
    Err(VineError::Dependency(
        "resolution did not converge (constraint oscillation)".into(),
    ))
}

fn unsatisfiable(registry: &PackageRegistry, name: &str, cs: &[Constraint]) -> VineError {
    if !registry.contains(name) {
        VineError::Dependency(format!("no such package: {name}"))
    } else {
        let cs: Vec<String> = cs.iter().map(|c| c.to_string()).collect();
        let have: Vec<String> = registry
            .versions_of(name)
            .map(|p| p.version.to_string())
            .collect();
        VineError::Dependency(format!(
            "conflicting constraints on {name}: need {} but have versions [{}]",
            cs.join(" and "),
            have.join(", ")
        ))
    }
}

fn topo_order(
    registry: &PackageRegistry,
    chosen: &BTreeMap<String, Version>,
) -> Result<Resolution> {
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        Unvisited,
        InProgress,
        Done,
    }
    let mut marks: BTreeMap<&str, Mark> = chosen
        .keys()
        .map(|n| (n.as_str(), Mark::Unvisited))
        .collect();
    let mut order: Vec<PackageSpec> = Vec::with_capacity(chosen.len());

    fn visit<'a>(
        name: &'a str,
        registry: &PackageRegistry,
        chosen: &'a BTreeMap<String, Version>,
        marks: &mut BTreeMap<&'a str, Mark>,
        order: &mut Vec<PackageSpec>,
        stack: &mut Vec<String>,
    ) -> Result<()> {
        match marks.get(name).copied() {
            Some(Mark::Done) => return Ok(()),
            Some(Mark::InProgress) => {
                stack.push(name.to_string());
                return Err(VineError::Dependency(format!(
                    "dependency cycle: {}",
                    stack.join(" -> ")
                )));
            }
            _ => {}
        }
        marks.insert(name, Mark::InProgress);
        stack.push(name.to_string());
        let version = chosen[name];
        let spec = registry
            .get(name, version)
            .ok_or_else(|| VineError::Internal(format!("chosen package vanished: {name}")))?;
        for dep in &spec.deps {
            // deps are keyed by name; the chosen map fixes the version
            if chosen.contains_key(&dep.name) {
                let dep_name = chosen.keys().find(|k| **k == dep.name).unwrap();
                visit(dep_name, registry, chosen, marks, order, stack)?;
            }
        }
        stack.pop();
        marks.insert(name, Mark::Done);
        order.push(spec.clone());
        Ok(())
    }

    let mut stack = Vec::new();
    for name in chosen.keys() {
        visit(name, registry, chosen, &mut marks, &mut order, &mut stack)?;
    }
    Ok(Resolution { packages: order })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::PackageSpec;

    fn v(s: &str) -> Version {
        Version::parse(s).unwrap()
    }

    fn simple_registry() -> PackageRegistry {
        let mut reg = PackageRegistry::new();
        reg.add(PackageSpec::new("app", v("1.0.0")).with_deps(vec![
            Requirement::at_least("libx", v("1.0.0")),
            Requirement::any("liby"),
        ]));
        reg.add(PackageSpec::new("libx", v("1.0.0")));
        reg.add(PackageSpec::new("libx", v("2.0.0")));
        reg.add(PackageSpec::new("liby", v("1.0.0")).with_deps(vec![Requirement::any("libz")]));
        reg.add(PackageSpec::new("libz", v("0.1.0")));
        reg
    }

    #[test]
    fn resolves_transitive_closure_in_install_order() {
        let reg = simple_registry();
        let res = resolve(&reg, &[Requirement::any("app")]).unwrap();
        let names: Vec<&str> = res.packages.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names.len(), 4);
        // every dep precedes its dependent
        let pos = |n: &str| names.iter().position(|x| *x == n).unwrap();
        assert!(pos("libx") < pos("app"));
        assert!(pos("liby") < pos("app"));
        assert!(pos("libz") < pos("liby"));
        // highest version of libx selected
        assert_eq!(
            res.packages
                .iter()
                .find(|p| p.name == "libx")
                .unwrap()
                .version,
            v("2.0.0")
        );
    }

    #[test]
    fn exact_constraint_pins_version() {
        let reg = simple_registry();
        let res = resolve(
            &reg,
            &[
                Requirement::any("app"),
                Requirement::exact("libx", v("1.0.0")),
            ],
        )
        .unwrap();
        assert_eq!(
            res.packages
                .iter()
                .find(|p| p.name == "libx")
                .unwrap()
                .version,
            v("1.0.0")
        );
    }

    #[test]
    fn conflicting_exact_constraints_error() {
        let reg = simple_registry();
        let e = resolve(
            &reg,
            &[
                Requirement::exact("libx", v("1.0.0")),
                Requirement::exact("libx", v("2.0.0")),
            ],
        )
        .unwrap_err();
        assert!(e.to_string().contains("conflicting constraints"), "{e}");
    }

    #[test]
    fn missing_package_errors() {
        let reg = simple_registry();
        let e = resolve(&reg, &[Requirement::any("numpy")]).unwrap_err();
        assert!(e.to_string().contains("no such package: numpy"));
    }

    #[test]
    fn missing_transitive_dep_errors() {
        let mut reg = PackageRegistry::new();
        reg.add(PackageSpec::new("a", v("1.0.0")).with_deps(vec![Requirement::any("ghost")]));
        let e = resolve(&reg, &[Requirement::any("a")]).unwrap_err();
        assert!(e.to_string().contains("ghost"));
    }

    #[test]
    fn dependency_cycle_is_rejected() {
        let mut reg = PackageRegistry::new();
        reg.add(PackageSpec::new("a", v("1.0.0")).with_deps(vec![Requirement::any("b")]));
        reg.add(PackageSpec::new("b", v("1.0.0")).with_deps(vec![Requirement::any("a")]));
        let e = resolve(&reg, &[Requirement::any("a")]).unwrap_err();
        assert!(e.to_string().contains("cycle"), "{e}");
    }

    #[test]
    fn self_cycle_is_rejected() {
        let mut reg = PackageRegistry::new();
        reg.add(PackageSpec::new("a", v("1.0.0")).with_deps(vec![Requirement::any("a")]));
        let e = resolve(&reg, &[Requirement::any("a")]).unwrap_err();
        assert!(e.to_string().contains("cycle"));
    }

    #[test]
    fn constraint_demotion_changes_dependency_set() {
        // v2 of "web" depends on "http2"; v1 depends on "http1". A sibling
        // constraint forces web back to v1, and the final closure must
        // contain http1, not http2.
        let mut reg = PackageRegistry::new();
        reg.add(PackageSpec::new("web", v("2.0.0")).with_deps(vec![Requirement::any("http2")]));
        reg.add(PackageSpec::new("web", v("1.0.0")).with_deps(vec![Requirement::any("http1")]));
        reg.add(PackageSpec::new("http1", v("1.0.0")));
        reg.add(PackageSpec::new("http2", v("1.0.0")));
        reg.add(
            PackageSpec::new("site", v("1.0.0"))
                .with_deps(vec![Requirement::exact("web", v("1.0.0"))]),
        );
        let res = resolve(&reg, &[Requirement::any("web"), Requirement::any("site")]).unwrap();
        assert!(res.contains("http1"));
        // http2 may remain from the first round's walk only if constraints
        // still reference it; the fixpoint walk re-derives from chosen
        // versions, so it must be gone
        assert!(!res.contains("http2"), "{:?}", res.packages);
    }

    #[test]
    fn diamond_dependency_is_deduplicated() {
        let mut reg = PackageRegistry::new();
        reg.add(
            PackageSpec::new("top", v("1.0.0"))
                .with_deps(vec![Requirement::any("left"), Requirement::any("right")]),
        );
        reg.add(PackageSpec::new("left", v("1.0.0")).with_deps(vec![Requirement::any("base")]));
        reg.add(PackageSpec::new("right", v("1.0.0")).with_deps(vec![Requirement::any("base")]));
        reg.add(PackageSpec::new("base", v("1.0.0")));
        let res = resolve(&reg, &[Requirement::any("top")]).unwrap();
        assert_eq!(res.packages.len(), 4);
        assert_eq!(res.packages.iter().filter(|p| p.name == "base").count(), 1);
    }

    #[test]
    fn resolution_size_accounting() {
        let mut reg = PackageRegistry::new();
        reg.add(
            PackageSpec::new("a", v("1.0.0"))
                .with_sizes(100, 1000, 10)
                .with_deps(vec![Requirement::any("b")]),
        );
        reg.add(
            PackageSpec::new("b", v("1.0.0"))
                .with_sizes(50, 500, 5)
                .no_module(),
        );
        let res = resolve(&reg, &[Requirement::any("a")]).unwrap();
        assert_eq!(res.packed_bytes(), 150);
        assert_eq!(res.unpacked_bytes(), 1500);
        assert_eq!(res.file_count(), 15);
        assert_eq!(res.provided_modules(), vec!["a"]);
    }

    #[test]
    fn empty_requirements_resolve_to_empty() {
        let reg = simple_registry();
        let res = resolve(&reg, &[]).unwrap();
        assert!(res.packages.is_empty());
        assert_eq!(res.packed_bytes(), 0);
    }
}
