//! The worker state machine: accounting and transitions, no timing.

use crate::library::{LibState, LibraryInstance};
use crate::sandbox::Sandbox;
use std::collections::BTreeMap;
use std::sync::Arc;
use vine_core::context::LibrarySpec;
use vine_core::ids::{ContentHash, InvocationId, LibraryInstanceId, WorkerId};
use vine_core::resources::Resources;
use vine_core::task::{FunctionCall, TaskSpec, UnitId};
use vine_core::{Result, VineError};
use vine_data::WorkerCache;

/// One worker's complete local state.
#[derive(Debug)]
pub struct WorkerState {
    pub id: WorkerId,
    /// Total capacity.
    pub total: Resources,
    /// Currently unallocated capacity.
    pub available: Resources,
    /// On-disk content cache.
    pub cache: WorkerCache,
    pub libraries: BTreeMap<LibraryInstanceId, LibraryInstance>,
    pub sandboxes: BTreeMap<UnitId, Sandbox>,
    /// Resources held by plain (non-library) tasks.
    tasks: BTreeMap<UnitId, Resources>,
}

impl WorkerState {
    pub fn new(id: WorkerId, total: Resources) -> WorkerState {
        WorkerState {
            id,
            total,
            available: total,
            cache: WorkerCache::new(total.disk_mb * 1024 * 1024),
            libraries: BTreeMap::new(),
            sandboxes: BTreeMap::new(),
            tasks: BTreeMap::new(),
        }
    }

    /// The paper's evaluation worker (§4.2): 32 cores, 64 GB mem, 64 GB
    /// disk.
    pub fn paper(id: WorkerId) -> WorkerState {
        WorkerState::new(id, Resources::paper_worker())
    }

    fn allocate(&mut self, want: &Resources) -> Result<()> {
        match self.available.checked_sub(want) {
            Some(rest) => {
                self.available = rest;
                Ok(())
            }
            None => Err(VineError::ResourceExhausted(format!(
                "worker {}: want {:?}, available {:?}",
                self.id, want, self.available
            ))),
        }
    }

    fn release(&mut self, held: &Resources) {
        self.available += *held;
        debug_assert!(
            self.total.can_fit(&self.available),
            "released more than allocated on {}",
            self.id
        );
    }

    // ---- files ----

    /// A file arrived (from manager, peer, or unpacking); cache it.
    pub fn file_arrived(&mut self, hash: ContentHash, materialized_bytes: u64) -> Result<()> {
        self.cache.insert(hash, materialized_bytes)
    }

    /// Which of `hashes` are not yet cached here (what a dispatch must
    /// stage first).
    pub fn missing_files(&self, hashes: &[ContentHash]) -> Vec<ContentHash> {
        hashes
            .iter()
            .filter(|h| !self.cache.contains(**h))
            .copied()
            .collect()
    }

    // ---- libraries ----

    /// Stage 1 of library deployment: reserve resources and create the
    /// Starting instance (files must already be cached; the substrate then
    /// boots the daemon and runs context setup).
    pub fn install_library(
        &mut self,
        id: LibraryInstanceId,
        spec: Arc<LibrarySpec>,
        per_invocation: &Resources,
    ) -> Result<&LibraryInstance> {
        let resources = spec.resources.unwrap_or(self.total);
        let slots = spec.resolve_slots(&self.total, per_invocation);
        self.allocate(&resources)?;
        // pin the context's files for the library's lifetime
        for f in spec.context.files() {
            if let Err(e) = self.cache.pin(f.hash) {
                self.release(&resources);
                return Err(e);
            }
        }
        let inst = LibraryInstance::new(id, spec, resources, slots);
        self.libraries.insert(id, inst);
        Ok(&self.libraries[&id])
    }

    /// Stage 2: the daemon reported Ready (§3.4 step 2).
    pub fn library_ready(&mut self, id: LibraryInstanceId) -> Result<()> {
        let lib = self.library_mut(id)?;
        if lib.state != LibState::Starting {
            return Err(VineError::Protocol(format!(
                "library {id} ready from state {:?}",
                lib.state
            )));
        }
        lib.state = LibState::Ready;
        Ok(())
    }

    /// The daemon failed during startup.
    pub fn library_failed(&mut self, id: LibraryInstanceId) -> Result<()> {
        self.library_mut(id)?.state = LibState::Failed;
        Ok(())
    }

    /// Remove a library and reclaim its resources. Only valid when no
    /// invocation is running in it (the manager evicts *empty* libraries,
    /// §3.5.2).
    pub fn remove_library(&mut self, id: LibraryInstanceId) -> Result<LibraryInstance> {
        let lib = self.library_mut(id)?;
        if !lib.is_empty() {
            return Err(VineError::Protocol(format!(
                "cannot remove busy library {id} ({} running)",
                lib.running.len()
            )));
        }
        let lib = self.libraries.remove(&id).unwrap();
        for f in lib.spec.context.files() {
            // pins were taken at install; ignore a missing file only if the
            // cache itself was never populated (failed install path)
            let _ = self.cache.unpin(f.hash);
        }
        self.release(&lib.resources);
        Ok(lib)
    }

    fn library_mut(&mut self, id: LibraryInstanceId) -> Result<&mut LibraryInstance> {
        self.libraries
            .get_mut(&id)
            .ok_or_else(|| VineError::Protocol(format!("no library instance {id}")))
    }

    /// Find a Ready instance of `library` hosting `function` with a free
    /// slot.
    pub fn find_library_for(&self, library: &str, function: &str) -> Option<LibraryInstanceId> {
        self.libraries
            .values()
            .find(|l| l.spec.name == library && l.can_accept(function))
            .map(|l| l.id)
    }

    /// Instances that are Ready and idle (eviction candidates).
    pub fn empty_libraries(&self) -> Vec<LibraryInstanceId> {
        self.libraries
            .values()
            .filter(|l| l.is_empty() && l.state != LibState::Starting)
            .map(|l| l.id)
            .collect()
    }

    // ---- invocations ----

    /// Begin an invocation on a library: occupy a slot and create its
    /// sandbox (§3.4 step 3).
    pub fn begin_call(&mut self, lib: LibraryInstanceId, call: &FunctionCall) -> Result<()> {
        {
            let l = self.library_mut(lib)?;
            if !l.spec.hosts_function(&call.function) {
                return Err(VineError::UnknownFunction {
                    library: l.spec.name.clone(),
                    function: call.function.clone(),
                });
            }
            l.begin(call.id)?;
        }
        let unit = UnitId::Call(call.id);
        self.sandboxes.insert(unit, Sandbox::new(unit));
        Ok(())
    }

    /// Finish an invocation: free the slot, bump the share value, destroy
    /// the sandbox (§3.4 step 4).
    pub fn finish_call(&mut self, lib: LibraryInstanceId, id: InvocationId) -> Result<()> {
        self.library_mut(lib)?.finish(id)?;
        self.sandboxes
            .remove(&UnitId::Call(id))
            .ok_or_else(|| VineError::Protocol(format!("no sandbox for {id}")))?;
        Ok(())
    }

    // ---- plain tasks ----

    /// Begin a stateless task: allocate resources, pin its cached inputs,
    /// create a sandbox.
    pub fn begin_task(&mut self, task: &TaskSpec) -> Result<()> {
        let unit = UnitId::Task(task.id);
        if self.tasks.contains_key(&unit) {
            return Err(VineError::Protocol(format!(
                "task {} already running",
                task.id
            )));
        }
        self.allocate(&task.resources)?;
        let mut sandbox = Sandbox::new(unit);
        for f in &task.inputs {
            if self.cache.contains(f.hash) {
                self.cache.pin(f.hash)?;
                sandbox.linked.push(f.hash);
            }
        }
        self.tasks.insert(unit, task.resources);
        self.sandboxes.insert(unit, sandbox);
        Ok(())
    }

    /// Finish a stateless task: release resources, unpin inputs, destroy
    /// the sandbox.
    pub fn finish_task(&mut self, id: vine_core::ids::TaskId) -> Result<()> {
        let unit = UnitId::Task(id);
        let held = self
            .tasks
            .remove(&unit)
            .ok_or_else(|| VineError::Protocol(format!("task {id} not running")))?;
        self.release(&held);
        if let Some(sb) = self.sandboxes.remove(&unit) {
            for h in sb.linked {
                self.cache.unpin(h)?;
            }
        }
        Ok(())
    }

    /// Concurrent running units (tasks + invocations).
    pub fn running_units(&self) -> usize {
        self.tasks.len()
            + self
                .libraries
                .values()
                .map(|l| l.running.len())
                .sum::<usize>()
    }

    /// Fraction of total cores currently allocated to *executing* work
    /// (libraries count their busy slots, not their whole reservation) —
    /// drives the contention model.
    pub fn occupancy(&self) -> f64 {
        if self.total.cores == 0 {
            return 0.0;
        }
        let task_cores: u32 = self.tasks.values().map(|r| r.cores).sum();
        let lib_cores: u32 = self
            .libraries
            .values()
            .map(|l| {
                let per_slot = l.resources.cores / l.slots.max(1);
                per_slot * l.running.len() as u32
            })
            .sum();
        f64::from(task_cores + lib_cores) / f64::from(self.total.cores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vine_core::context::{ContextSpec, FileRef};
    use vine_core::ids::{FileId, TaskId};

    fn file(i: u64, size: u64) -> FileRef {
        FileRef::new(
            FileId(i),
            format!("f{i}"),
            ContentHash::of_str(&format!("content-{i}")),
            size,
        )
    }

    fn lnni_spec(with_files: bool) -> LibrarySpec {
        let mut spec = LibrarySpec::new("lnni");
        spec.functions = vec!["infer".into()];
        if with_files {
            spec.context = ContextSpec {
                data: vec![file(1, 1000)],
                environment: Some(file(2, 500)),
                ..Default::default()
            };
        }
        spec
    }

    fn call(i: u64) -> FunctionCall {
        let mut c = FunctionCall::new(InvocationId(i), "lnni", "infer", vec![]);
        c.resources = Resources::lnni_invocation();
        c
    }

    fn ready_worker() -> (WorkerState, LibraryInstanceId) {
        let mut w = WorkerState::paper(WorkerId(0));
        w.file_arrived(file(1, 1000).hash, 1000).unwrap();
        w.file_arrived(file(2, 500).hash, 500).unwrap();
        let id = LibraryInstanceId(1);
        w.install_library(id, Arc::new(lnni_spec(true)), &Resources::lnni_invocation())
            .unwrap();
        w.library_ready(id).unwrap();
        (w, id)
    }

    #[test]
    fn whole_worker_library_gets_sixteen_slots() {
        let (w, id) = ready_worker();
        assert_eq!(w.libraries[&id].slots, 16, "paper §4.2: 16 LNNI slots");
        assert_eq!(w.available, Resources::ZERO, "library owns the worker");
    }

    #[test]
    fn library_lifecycle_and_accounting() {
        let (mut w, id) = ready_worker();
        w.begin_call(id, &call(1)).unwrap();
        w.begin_call(id, &call(2)).unwrap();
        assert_eq!(w.running_units(), 2);
        assert_eq!(w.sandboxes.len(), 2);

        // busy library cannot be removed
        assert!(w.remove_library(id).is_err());

        w.finish_call(id, InvocationId(1)).unwrap();
        w.finish_call(id, InvocationId(2)).unwrap();
        assert_eq!(w.libraries[&id].served, 2);
        assert!(w.sandboxes.is_empty());

        // now removable; resources return
        w.remove_library(id).unwrap();
        assert_eq!(w.available, w.total);
        assert!(w.libraries.is_empty());
    }

    #[test]
    fn install_requires_resources() {
        let mut w = WorkerState::paper(WorkerId(0));
        let mut spec = lnni_spec(false);
        spec.resources = Some(Resources::new(20, 1024, 1024));
        let spec = Arc::new(spec);
        w.install_library(
            LibraryInstanceId(1),
            Arc::clone(&spec),
            &Resources::new(1, 1, 1),
        )
        .unwrap();
        // second 20-core library does not fit in the remaining 12 cores
        let e = w
            .install_library(LibraryInstanceId(2), spec, &Resources::new(1, 1, 1))
            .unwrap_err();
        assert!(matches!(e, VineError::ResourceExhausted(_)));
        // but a small one does
        let mut small = lnni_spec(false);
        small.resources = Some(Resources::new(4, 1024, 1024));
        w.install_library(
            LibraryInstanceId(3),
            Arc::new(small),
            &Resources::new(1, 1, 1),
        )
        .unwrap();
    }

    #[test]
    fn install_pins_context_files() {
        let (mut w, id) = ready_worker();
        // context files are pinned: the cache refuses to evict them even
        // under pressure (insert something that cannot fit without them)
        let cap = w.cache.capacity();
        let e = w
            .file_arrived(ContentHash::of_str("huge"), cap)
            .unwrap_err();
        assert!(matches!(e, VineError::ResourceExhausted(_)));
        // after removal, pins are gone and eviction can proceed
        w.remove_library(id).unwrap();
        w.file_arrived(ContentHash::of_str("huge"), cap).unwrap();
    }

    #[test]
    fn install_missing_file_rolls_back_allocation() {
        let mut w = WorkerState::paper(WorkerId(0));
        // context references files never staged to the cache
        let e = w
            .install_library(
                LibraryInstanceId(1),
                Arc::new(lnni_spec(true)),
                &Resources::lnni_invocation(),
            )
            .unwrap_err();
        assert!(matches!(e, VineError::Data(_)), "{e}");
        assert_eq!(w.available, w.total, "allocation rolled back");
        assert!(w.libraries.is_empty());
    }

    #[test]
    fn dispatch_to_unready_library_fails() {
        let mut w = WorkerState::paper(WorkerId(0));
        let id = LibraryInstanceId(1);
        w.install_library(
            id,
            Arc::new(lnni_spec(false)),
            &Resources::lnni_invocation(),
        )
        .unwrap();
        assert!(w.begin_call(id, &call(1)).is_err(), "still Starting");
        assert!(w.find_library_for("lnni", "infer").is_none());
        w.library_ready(id).unwrap();
        assert_eq!(w.find_library_for("lnni", "infer"), Some(id));
    }

    #[test]
    fn wrong_function_rejected() {
        let (mut w, id) = ready_worker();
        let mut c = call(1);
        c.function = "train".into();
        let e = w.begin_call(id, &c).unwrap_err();
        assert!(matches!(e, VineError::UnknownFunction { .. }));
    }

    #[test]
    fn slots_exhaust_at_sixteen() {
        let (mut w, id) = ready_worker();
        for i in 0..16 {
            w.begin_call(id, &call(i)).unwrap();
        }
        assert!(w.begin_call(id, &call(16)).is_err());
        assert!(w.find_library_for("lnni", "infer").is_none());
        assert!((w.occupancy() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn plain_task_lifecycle() {
        let mut w = WorkerState::paper(WorkerId(0));
        let mut t = TaskSpec::new(TaskId(1), "wrapped");
        t.resources = Resources::new(2, 4096, 4096);
        t.inputs = vec![file(1, 100)];
        w.file_arrived(t.inputs[0].hash, 100).unwrap();

        w.begin_task(&t).unwrap();
        assert_eq!(w.running_units(), 1);
        assert!(w.begin_task(&t).is_err(), "duplicate task");
        // the input is pinned while the task runs
        assert!(w.cache.remove(t.inputs[0].hash).is_err());

        w.finish_task(TaskId(1)).unwrap();
        assert_eq!(w.available, w.total);
        assert_eq!(w.running_units(), 0);
        w.cache.remove(t.inputs[0].hash).unwrap();
        assert!(w.finish_task(TaskId(1)).is_err(), "double finish");
    }

    #[test]
    fn missing_files_reports_gap() {
        let mut w = WorkerState::paper(WorkerId(0));
        let a = ContentHash::of_str("a");
        let b = ContentHash::of_str("b");
        w.file_arrived(a, 10).unwrap();
        assert_eq!(w.missing_files(&[a, b]), vec![b]);
    }

    #[test]
    fn empty_library_listing_skips_starting_and_busy() {
        let mut w = WorkerState::paper(WorkerId(0));
        let mut spec = lnni_spec(false);
        spec.resources = Some(Resources::new(4, 4096, 4096));
        spec.slots = Some(2);
        let a = LibraryInstanceId(1);
        let b = LibraryInstanceId(2);
        let spec = Arc::new(spec);
        w.install_library(a, Arc::clone(&spec), &Resources::new(2, 2048, 2048))
            .unwrap();
        w.install_library(b, spec, &Resources::new(2, 2048, 2048))
            .unwrap();
        // a still Starting → not an eviction candidate
        assert!(w.empty_libraries().is_empty());
        w.library_ready(a).unwrap();
        w.library_ready(b).unwrap();
        assert_eq!(w.empty_libraries(), vec![a, b]);
        w.begin_call(a, &call(1)).unwrap();
        assert_eq!(w.empty_libraries(), vec![b]);
    }

    #[test]
    fn occupancy_counts_busy_slots_not_reservations() {
        let (mut w, id) = ready_worker();
        assert_eq!(w.occupancy(), 0.0, "idle library: zero occupancy");
        w.begin_call(id, &call(1)).unwrap();
        // one busy slot of 16 on a 32-core worker = 2 cores
        assert!((w.occupancy() - 2.0 / 32.0).abs() < 1e-9);
    }
}
