//! Per-invocation sandboxes.
//!
//! "The worker sets up a sandbox specifically for the invocation" (§3.4
//! step 3): a private working directory with the invocation's input files
//! linked in from the cache, destroyed when the result has been returned.
//! Sandboxes here are virtual (a name plus a link set); the point is the
//! lifecycle and the pin accounting that keeps linked files from being
//! evicted mid-run.

use serde::{Deserialize, Serialize};
use vine_core::ids::ContentHash;
use vine_core::task::UnitId;

/// A live sandbox for one executing unit.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Sandbox {
    pub unit: UnitId,
    /// Virtual path, e.g. `sandbox/i42`.
    pub path: String,
    /// Cache files linked into this sandbox (pinned for its lifetime).
    pub linked: Vec<ContentHash>,
}

impl Sandbox {
    pub fn new(unit: UnitId) -> Sandbox {
        let path = match unit {
            UnitId::Task(t) => format!("sandbox/{t}"),
            UnitId::Call(i) => format!("sandbox/{i}"),
        };
        Sandbox {
            unit,
            path,
            linked: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vine_core::ids::{InvocationId, TaskId};

    #[test]
    fn sandbox_paths_are_unique_per_unit() {
        let a = Sandbox::new(UnitId::Task(TaskId(1)));
        let b = Sandbox::new(UnitId::Call(InvocationId(1)));
        let c = Sandbox::new(UnitId::Call(InvocationId(2)));
        assert_eq!(a.path, "sandbox/t1");
        assert_eq!(b.path, "sandbox/i1");
        assert_ne!(b.path, c.path);
    }
}
