//! Library instances: deployed function contexts.
//!
//! A library is "a special task ... that runs like a daemon until
//! terminated and cooperates with the worker process to execute
//! invocations" (§3.4). One [`LibraryInstance`] is one such daemon on one
//! worker: it owns a fixed resource allocation, a number of invocation
//! slots, and a share counter (its Fig 11 "share value").

use serde::{Deserialize, Serialize};
use std::sync::Arc;
use vine_core::context::LibrarySpec;
use vine_core::ids::{InvocationId, LibraryInstanceId};
use vine_core::resources::Resources;
use vine_core::{Result, VineError};

/// Lifecycle of a deployed library.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum LibState {
    /// Files staged; the daemon is booting and running context setup.
    Starting,
    /// Context setup done; serving invocations (§3.4 step 2 complete).
    Ready,
    /// Context setup failed; awaiting removal.
    Failed,
}

/// One deployed library daemon.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LibraryInstance {
    pub id: LibraryInstanceId,
    /// Shared with the manager's registry and every sibling instance —
    /// specs carry the full context file list, so they are refcounted
    /// rather than deep-cloned per install.
    pub spec: Arc<LibrarySpec>,
    pub state: LibState,
    /// Resources this instance owns on its worker.
    pub resources: Resources,
    /// Concurrent invocation slots.
    pub slots: u32,
    /// Invocations currently executing.
    pub running: Vec<InvocationId>,
    /// Total invocations served to completion — the share value (Fig 11).
    pub served: u64,
}

impl LibraryInstance {
    pub fn new(
        id: LibraryInstanceId,
        spec: Arc<LibrarySpec>,
        resources: Resources,
        slots: u32,
    ) -> LibraryInstance {
        LibraryInstance {
            id,
            spec,
            state: LibState::Starting,
            resources,
            slots: slots.max(1),
            running: Vec::new(),
            served: 0,
        }
    }

    pub fn free_slots(&self) -> u32 {
        self.slots - self.running.len() as u32
    }

    /// An empty library does no work and holds resources; the manager may
    /// reclaim it (§3.5.2).
    pub fn is_empty(&self) -> bool {
        self.running.is_empty()
    }

    pub fn can_accept(&self, function: &str) -> bool {
        self.state == LibState::Ready && self.free_slots() > 0 && self.spec.hosts_function(function)
    }

    pub(crate) fn begin(&mut self, id: InvocationId) -> Result<()> {
        if self.state != LibState::Ready {
            return Err(VineError::Protocol(format!(
                "library {} not ready (state {:?})",
                self.id, self.state
            )));
        }
        if self.free_slots() == 0 {
            return Err(VineError::ResourceExhausted(format!(
                "library {} has no free slots",
                self.id
            )));
        }
        if self.running.contains(&id) {
            return Err(VineError::Protocol(format!(
                "invocation {id} already running on library {}",
                self.id
            )));
        }
        self.running.push(id);
        Ok(())
    }

    pub(crate) fn finish(&mut self, id: InvocationId) -> Result<()> {
        match self.running.iter().position(|r| *r == id) {
            Some(pos) => {
                self.running.swap_remove(pos);
                self.served += 1;
                Ok(())
            }
            None => Err(VineError::Protocol(format!(
                "invocation {id} not running on library {}",
                self.id
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib(slots: u32) -> LibraryInstance {
        let mut spec = LibrarySpec::new("lnni");
        spec.functions = vec!["infer".into()];
        let mut inst = LibraryInstance::new(
            LibraryInstanceId(1),
            Arc::new(spec),
            Resources::new(32, 65536, 65536),
            slots,
        );
        inst.state = LibState::Ready;
        inst
    }

    #[test]
    fn slot_accounting() {
        let mut l = lib(2);
        assert_eq!(l.free_slots(), 2);
        l.begin(InvocationId(1)).unwrap();
        l.begin(InvocationId(2)).unwrap();
        assert_eq!(l.free_slots(), 0);
        assert!(!l.can_accept("infer"));
        let e = l.begin(InvocationId(3)).unwrap_err();
        assert!(e.to_string().contains("no free slots"));
        l.finish(InvocationId(1)).unwrap();
        assert_eq!(l.free_slots(), 1);
        assert_eq!(l.served, 1);
    }

    #[test]
    fn not_ready_rejects_invocations() {
        let mut l = lib(1);
        l.state = LibState::Starting;
        assert!(!l.can_accept("infer"));
        assert!(l.begin(InvocationId(1)).is_err());
        l.state = LibState::Failed;
        assert!(l.begin(InvocationId(1)).is_err());
    }

    #[test]
    fn function_matching() {
        let l = lib(1);
        assert!(l.can_accept("infer"));
        assert!(!l.can_accept("train"));
    }

    #[test]
    fn duplicate_begin_rejected() {
        let mut l = lib(4);
        l.begin(InvocationId(5)).unwrap();
        assert!(l.begin(InvocationId(5)).is_err());
    }

    #[test]
    fn finish_unknown_invocation_rejected() {
        let mut l = lib(2);
        assert!(l.finish(InvocationId(9)).is_err());
    }

    #[test]
    fn share_value_counts_completions_only() {
        let mut l = lib(4);
        for i in 0..4 {
            l.begin(InvocationId(i)).unwrap();
        }
        assert_eq!(l.served, 0);
        for i in 0..4 {
            l.finish(InvocationId(i)).unwrap();
        }
        assert_eq!(l.served, 4);
        assert!(l.is_empty());
    }

    #[test]
    fn zero_slot_spec_clamps_to_one() {
        let l = LibraryInstance::new(
            LibraryInstanceId(2),
            Arc::new(LibrarySpec::new("x")),
            Resources::ZERO,
            0,
        );
        assert_eq!(l.slots, 1);
    }
}
