//! # vine-worker
//!
//! The worker half of the **retain** mechanism (paper §2.2.3, §3.4). A
//! worker hosts:
//!
//! * a content-addressed [`vine_data::WorkerCache`] (context on disk — L2),
//! * zero or more [`library::LibraryInstance`]s — daemon processes that ran
//!   a context setup once and now serve invocations from memory (L3),
//! * per-unit [`sandbox::Sandbox`]es for running tasks and invocations,
//! * strict resource accounting (§2.1.3: "a worker must be able to account
//!   for such resource occupation ... and report such consumption back to
//!   the manager").
//!
//! [`state::WorkerState`] is a *pure state machine*: it validates and
//! applies transitions but attaches no timing and performs no I/O. The
//! discrete-event simulator drives it with modeled durations; the live
//! threaded runtime drives it with real libraries on real threads. Both
//! substrates therefore exercise identical accounting and protocol logic.
//!
//! [`protocol`] defines the §3.4 worker ↔ library message protocol.

pub mod library;
pub mod protocol;
pub mod sandbox;
pub mod state;

pub use library::{LibState, LibraryInstance};
pub use protocol::{LibraryToWorker, WorkerToLibrary};
pub use sandbox::Sandbox;
pub use state::WorkerState;
