//! The worker ↔ library protocol (paper §3.4).
//!
//! 1. The worker forks/execs the library.
//! 2. The library boots, runs all context-setup functions, sends
//!    [`LibraryToWorker::Ready`], and waits.
//! 3. The worker receives an invocation from the manager, creates a
//!    sandbox, and sends [`WorkerToLibrary::Invoke`].
//! 4. The library executes (directly or in a fork), serializes the result
//!    into the sandbox, and sends [`LibraryToWorker::ResultReady`]. The
//!    worker returns the result file to the manager and destroys the
//!    sandbox.

use serde::{Deserialize, Serialize};
use vine_core::ids::InvocationId;
use vine_core::task::ExecMode;

/// Messages a worker sends to a library daemon.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum WorkerToLibrary {
    /// Execute an invocation (§3.4 step 3): metadata, arguments, and the
    /// sandbox path.
    Invoke {
        id: InvocationId,
        function: String,
        args_blob: Vec<u8>,
        sandbox: String,
        mode: ExecMode,
    },
    /// Terminate the daemon (library eviction, worker shutdown).
    Shutdown,
}

/// Messages a library daemon sends to its worker.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum LibraryToWorker {
    /// Context setup complete; ready to execute invocations (§3.4 step 2).
    Ready,
    /// Context setup failed; the library is unusable.
    StartupFailed { error: String },
    /// An invocation finished; its result file is in the sandbox
    /// (§3.4 step 4).
    ResultReady {
        id: InvocationId,
        /// Serialized result on success, error text on failure. An
        /// invocation failure does not kill the library.
        result: Result<Vec<u8>, String>,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_roundtrip_through_serde() {
        // the live runtime moves these across thread channels; the sim logs
        // them: both rely on clean serde round-trips
        let msgs = vec![
            WorkerToLibrary::Invoke {
                id: InvocationId(7),
                function: "infer".into(),
                args_blob: vec![1, 2, 3],
                sandbox: "sandbox/i7".into(),
                mode: ExecMode::Fork,
            },
            WorkerToLibrary::Shutdown,
        ];
        for m in msgs {
            let json = serde_json::to_string(&m).unwrap();
            let back: WorkerToLibrary = serde_json::from_str(&json).unwrap();
            assert_eq!(back, m);
        }
        let replies = vec![
            LibraryToWorker::Ready,
            LibraryToWorker::StartupFailed {
                error: "missing module nn".into(),
            },
            LibraryToWorker::ResultReady {
                id: InvocationId(7),
                result: Ok(vec![9]),
            },
            LibraryToWorker::ResultReady {
                id: InvocationId(8),
                result: Err("division by zero".into()),
            },
        ];
        for m in replies {
            let json = serde_json::to_string(&m).unwrap();
            let back: LibraryToWorker = serde_json::from_str(&json).unwrap();
            assert_eq!(back, m);
        }
    }
}
