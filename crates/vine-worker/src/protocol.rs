//! The worker ↔ library protocol — re-exported from [`vine_proto`].
//!
//! The message types moved to `vine-proto` when the live runtime gained a
//! transport-agnostic protocol core: the same §3.4 messages now flow over
//! in-process channels or framed TCP without change. This module remains
//! so existing `vine_worker::protocol` paths keep working.

pub use vine_proto::library::{LibraryToWorker, WorkerToLibrary};
