//! Content-addressed store for compiled library images.
//!
//! A compiled vine-lang module is context in the paper's sense (§2.2.3):
//! computed once, immutable, and named by the digest of the source it came
//! from. This store is that naming made operational, on both sides of the
//! wire:
//!
//! * the **manager** interns the image it compiles at `install_library`
//!   time, so installing the same library source into many workers (or
//!   re-installing after a worker loss) compiles exactly once;
//! * each **worker** interns the bytes shipped inside a `LibraryImage`, so
//!   N library instances on one worker hold one `Arc` of the bytes instead
//!   of N copies, and a re-install after eviction is a map hit.
//!
//! The store holds opaque bytes rather than decoded code on purpose: bytes
//! are `Send`/`Sync` and identical on every host, while decoded bytecode
//! is an `Rc`-linked structure each library daemon thread decodes privately.

use std::collections::BTreeMap;
use std::sync::Arc;
use vine_core::ids::ContentHash;

/// Interning table: source digest → compiled image bytes, with hit/miss
/// accounting so benchmarks and tests can see the dedup working.
#[derive(Debug, Default)]
pub struct CompiledImageStore {
    by_digest: BTreeMap<ContentHash, Arc<Vec<u8>>>,
    stats: ImageStoreStats,
}

/// Observability counters for the store.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ImageStoreStats {
    /// Lookups answered from the table (no compile / no copy needed).
    pub hits: u64,
    /// Images produced and inserted (the compile-or-copy events).
    pub misses: u64,
}

impl CompiledImageStore {
    pub fn new() -> CompiledImageStore {
        CompiledImageStore::default()
    }

    /// The image for `digest`, producing (and interning) it on first
    /// request. `produce` typically compiles source on the manager, or
    /// copies shipped bytes on a worker.
    pub fn intern_with(
        &mut self,
        digest: ContentHash,
        produce: impl FnOnce() -> Vec<u8>,
    ) -> Arc<Vec<u8>> {
        if let Some(bytes) = self.by_digest.get(&digest) {
            self.stats.hits += 1;
            return Arc::clone(bytes);
        }
        self.stats.misses += 1;
        let bytes = Arc::new(produce());
        self.by_digest.insert(digest, Arc::clone(&bytes));
        bytes
    }

    /// The image for `digest`, if already interned.
    pub fn get(&mut self, digest: ContentHash) -> Option<Arc<Vec<u8>>> {
        let found = self.by_digest.get(&digest).map(Arc::clone);
        if found.is_some() {
            self.stats.hits += 1;
        }
        found
    }

    pub fn stats(&self) -> ImageStoreStats {
        self.stats
    }

    pub fn len(&self) -> usize {
        self.by_digest.len()
    }

    pub fn is_empty(&self) -> bool {
        self.by_digest.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_digests_compile_once() {
        let mut store = CompiledImageStore::new();
        let d = ContentHash::of_str("def f(x) { return x }");
        let mut compiles = 0;
        for _ in 0..5 {
            let bytes = store.intern_with(d, || {
                compiles += 1;
                vec![1, 2, 3]
            });
            assert_eq!(*bytes, vec![1, 2, 3]);
        }
        assert_eq!(compiles, 1);
        assert_eq!(store.stats(), ImageStoreStats { hits: 4, misses: 1 });
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn distinct_digests_are_distinct_entries() {
        let mut store = CompiledImageStore::new();
        let a = ContentHash::of_str("a");
        let b = ContentHash::of_str("b");
        store.intern_with(a, || vec![1]);
        store.intern_with(b, || vec![2]);
        assert_eq!(store.len(), 2);
        assert_eq!(*store.get(a).unwrap(), vec![1]);
        assert_eq!(*store.get(b).unwrap(), vec![2]);
        assert!(store.get(ContentHash::of_str("c")).is_none());
    }

    #[test]
    fn interned_images_share_one_allocation() {
        let mut store = CompiledImageStore::new();
        let d = ContentHash::of_str("src");
        let first = store.intern_with(d, || vec![9; 1024]);
        let second = store.intern_with(d, || unreachable!("must not re-produce"));
        assert!(Arc::ptr_eq(&first, &second));
    }
}
