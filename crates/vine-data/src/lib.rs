//! # vine-data
//!
//! The data plane. Four pieces:
//!
//! * [`images::CompiledImageStore`] — content-addressed interning of
//!   compiled library images by source digest: the manager compiles each
//!   distinct library source once, and workers hold one copy of shipped
//!   image bytes no matter how many library instances use them.
//! * [`store::ContentStore`] — the manager's table of declared files.
//!   Every transferable is immutable and content-addressed (paper §2.2.2:
//!   unique, read-only naming is what makes worker-to-worker transfers safe
//!   from silent corruption). Declaring identical content twice yields the
//!   *same* file.
//! * [`cache::WorkerCache`] — a worker's local store, keyed by content
//!   hash, with LRU eviction, pinning for in-use files, and strict capacity
//!   accounting. This is where the **retain** mechanism keeps context on
//!   disk between invocations (reuse level L2).
//! * [`sharedfs::SharedFsModel`] — the Panasas-style shared filesystem the
//!   paper's L1 baseline hammers: finite aggregate bandwidth and IOPS,
//!   fair-shared among concurrent readers.

pub mod cache;
pub mod images;
pub mod sharedfs;
pub mod store;

pub use cache::WorkerCache;
pub use images::CompiledImageStore;
pub use sharedfs::SharedFsModel;
pub use store::ContentStore;
