//! Worker-local cache: the on-disk half of the retain mechanism.
//!
//! Files land here once (fetched from the manager, a peer, or unpacked from
//! an archive) and are shared by every invocation on the worker — the
//! data-to-worker binding of §2.2.1. Capacity is strictly accounted;
//! eviction is LRU over unpinned entries; files in use by a running task,
//! library or transfer are pinned and never evicted.

use std::collections::BTreeMap;
use vine_core::ids::ContentHash;
use vine_core::{Result, VineError};

#[derive(Debug, Clone)]
struct Entry {
    size: u64,
    pins: u32,
    last_used: u64,
}

/// A bounded content-addressed cache.
#[derive(Debug)]
pub struct WorkerCache {
    capacity: u64,
    used: u64,
    clock: u64,
    entries: BTreeMap<ContentHash, Entry>,
    /// Total bytes evicted over the cache's lifetime (telemetry).
    pub evicted_bytes: u64,
    /// Cache hits / misses (telemetry).
    pub hits: u64,
    pub misses: u64,
}

impl WorkerCache {
    pub fn new(capacity_bytes: u64) -> WorkerCache {
        WorkerCache {
            capacity: capacity_bytes,
            used: 0,
            clock: 0,
            entries: BTreeMap::new(),
            evicted_bytes: 0,
            hits: 0,
            misses: 0,
        }
    }

    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    pub fn used(&self) -> u64 {
        self.used
    }

    pub fn available(&self) -> u64 {
        self.capacity - self.used
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Check presence (and count the lookup as a hit or miss). Touches the
    /// entry's recency on hit.
    pub fn lookup(&mut self, hash: ContentHash) -> bool {
        self.clock += 1;
        match self.entries.get_mut(&hash) {
            Some(e) => {
                e.last_used = self.clock;
                self.hits += 1;
                true
            }
            None => {
                self.misses += 1;
                false
            }
        }
    }

    /// Presence check without telemetry or recency side effects.
    pub fn contains(&self, hash: ContentHash) -> bool {
        self.entries.contains_key(&hash)
    }

    /// Insert a file, evicting LRU unpinned entries as needed. Fails if the
    /// file can never fit (larger than capacity minus pinned bytes).
    /// Inserting an already-present hash refreshes recency and is a no-op
    /// for space (content-addressed: same hash ⇒ same bytes).
    pub fn insert(&mut self, hash: ContentHash, size: u64) -> Result<()> {
        self.clock += 1;
        if let Some(e) = self.entries.get_mut(&hash) {
            e.last_used = self.clock;
            return Ok(());
        }
        if size > self.capacity {
            return Err(VineError::ResourceExhausted(format!(
                "file of {size} bytes exceeds cache capacity {}",
                self.capacity
            )));
        }
        while self.used + size > self.capacity {
            self.evict_lru()?;
        }
        self.used += size;
        self.entries.insert(
            hash,
            Entry {
                size,
                pins: 0,
                last_used: self.clock,
            },
        );
        Ok(())
    }

    /// Pin a file so eviction skips it (file is in use by a running
    /// invocation, library, or outbound peer transfer).
    pub fn pin(&mut self, hash: ContentHash) -> Result<()> {
        let e = self
            .entries
            .get_mut(&hash)
            .ok_or_else(|| VineError::Data(format!("pin of uncached file {hash}")))?;
        e.pins += 1;
        Ok(())
    }

    pub fn unpin(&mut self, hash: ContentHash) -> Result<()> {
        let e = self
            .entries
            .get_mut(&hash)
            .ok_or_else(|| VineError::Data(format!("unpin of uncached file {hash}")))?;
        if e.pins == 0 {
            return Err(VineError::Internal(format!("unbalanced unpin of {hash}")));
        }
        e.pins -= 1;
        Ok(())
    }

    /// Remove a specific file (e.g. an uncacheable input at task end).
    /// Pinned files cannot be removed.
    pub fn remove(&mut self, hash: ContentHash) -> Result<()> {
        match self.entries.get(&hash) {
            Some(e) if e.pins > 0 => {
                Err(VineError::Data(format!("cannot remove pinned file {hash}")))
            }
            Some(_) => {
                let e = self.entries.remove(&hash).unwrap();
                self.used -= e.size;
                Ok(())
            }
            None => Err(VineError::Data(format!("remove of uncached file {hash}"))),
        }
    }

    fn evict_lru(&mut self) -> Result<()> {
        let victim = self
            .entries
            .iter()
            .filter(|(_, e)| e.pins == 0)
            .min_by_key(|(_, e)| e.last_used)
            .map(|(h, _)| *h)
            .ok_or_else(|| {
                VineError::ResourceExhausted("cache full and every entry is pinned".into())
            })?;
        let e = self.entries.remove(&victim).unwrap();
        self.used -= e.size;
        self.evicted_bytes += e.size;
        Ok(())
    }

    /// Iterate cached hashes (for peer-transfer source selection).
    pub fn hashes(&self) -> impl Iterator<Item = ContentHash> + '_ {
        self.entries.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(s: &str) -> ContentHash {
        ContentHash::of_str(s)
    }

    #[test]
    fn insert_and_lookup() {
        let mut c = WorkerCache::new(100);
        assert!(!c.lookup(h("a")));
        c.insert(h("a"), 40).unwrap();
        assert!(c.lookup(h("a")));
        assert_eq!(c.used(), 40);
        assert_eq!(c.hits, 1);
        assert_eq!(c.misses, 1);
    }

    #[test]
    fn duplicate_insert_is_space_noop() {
        let mut c = WorkerCache::new(100);
        c.insert(h("a"), 40).unwrap();
        c.insert(h("a"), 40).unwrap();
        assert_eq!(c.used(), 40);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = WorkerCache::new(100);
        c.insert(h("a"), 40).unwrap();
        c.insert(h("b"), 40).unwrap();
        // touch a so b becomes LRU
        assert!(c.lookup(h("a")));
        c.insert(h("c"), 40).unwrap(); // must evict b
        assert!(c.contains(h("a")));
        assert!(!c.contains(h("b")));
        assert!(c.contains(h("c")));
        assert_eq!(c.evicted_bytes, 40);
    }

    #[test]
    fn pinned_entries_survive_eviction() {
        let mut c = WorkerCache::new(100);
        c.insert(h("a"), 60).unwrap();
        c.pin(h("a")).unwrap();
        c.insert(h("b"), 30).unwrap();
        // inserting 40 must evict b (a is pinned even though older)
        c.insert(h("c"), 40).unwrap();
        assert!(c.contains(h("a")));
        assert!(!c.contains(h("b")));
    }

    #[test]
    fn all_pinned_cache_full_errors() {
        let mut c = WorkerCache::new(100);
        c.insert(h("a"), 100).unwrap();
        c.pin(h("a")).unwrap();
        let e = c.insert(h("b"), 10).unwrap_err();
        assert!(e.to_string().contains("pinned"), "{e}");
    }

    #[test]
    fn oversized_file_rejected() {
        let mut c = WorkerCache::new(100);
        let e = c.insert(h("big"), 101).unwrap_err();
        assert!(e.to_string().contains("exceeds cache capacity"));
    }

    #[test]
    fn pin_unpin_balance() {
        let mut c = WorkerCache::new(100);
        c.insert(h("a"), 10).unwrap();
        c.pin(h("a")).unwrap();
        c.pin(h("a")).unwrap();
        c.unpin(h("a")).unwrap();
        // still pinned once: not evictable
        c.insert(h("b"), 95).unwrap_err();
        c.unpin(h("a")).unwrap();
        c.insert(h("b"), 95).unwrap(); // now evictable
        assert!(!c.contains(h("a")));
        // unbalanced unpin is an internal error
        c.pin(h("b")).unwrap();
        c.unpin(h("b")).unwrap();
        assert!(c.unpin(h("b")).is_err());
    }

    #[test]
    fn remove_respects_pins() {
        let mut c = WorkerCache::new(100);
        c.insert(h("a"), 10).unwrap();
        c.pin(h("a")).unwrap();
        assert!(c.remove(h("a")).is_err());
        c.unpin(h("a")).unwrap();
        c.remove(h("a")).unwrap();
        assert_eq!(c.used(), 0);
        assert!(c.remove(h("a")).is_err());
    }

    #[test]
    fn used_never_exceeds_capacity_under_churn() {
        let mut c = WorkerCache::new(1000);
        for i in 0..200u32 {
            let size = (i as u64 * 37) % 300 + 1;
            c.insert(h(&format!("f{i}")), size).unwrap();
            assert!(c.used() <= c.capacity(), "overflow at step {i}");
        }
        assert!(c.evicted_bytes > 0);
    }
}
