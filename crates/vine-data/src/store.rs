//! The manager's content-addressed file table.

use std::collections::BTreeMap;
use vine_core::context::{FileRef, FileSource};
use vine_core::ids::{ContentHash, FileId};
use vine_core::{Result, VineError};
use vine_env::EnvironmentArchive;

/// All files the manager knows about. TaskVine "maintain[s] a table of
/// files in the manager, naming files based on the hash of their contents"
/// (§2.2.2); this is that table.
#[derive(Debug, Default)]
pub struct ContentStore {
    next_id: u64,
    by_id: BTreeMap<FileId, FileRef>,
    by_hash: BTreeMap<ContentHash, FileId>,
}

impl ContentStore {
    pub fn new() -> ContentStore {
        ContentStore::default()
    }

    /// Declare a file from actual bytes (small things: serialized code,
    /// argument blobs). Content-identical declarations dedup to one file.
    pub fn declare_bytes(&mut self, name: impl Into<String>, bytes: &[u8]) -> FileRef {
        let hash = ContentHash::of_bytes(bytes);
        self.declare_inner(name.into(), hash, bytes.len() as u64, 0)
    }

    /// Declare a file by externally known identity and size (large virtual
    /// payloads: datasets, model parameter blobs).
    pub fn declare_sized(
        &mut self,
        name: impl Into<String>,
        hash: ContentHash,
        size_bytes: u64,
    ) -> FileRef {
        self.declare_inner(name.into(), hash, size_bytes, 0)
    }

    /// Declare a packed environment archive: transfers at packed size,
    /// occupies unpacked size once materialized.
    pub fn declare_environment(&mut self, archive: &EnvironmentArchive) -> FileRef {
        self.declare_inner(
            format!("{}.tar.zst", archive.name),
            archive.hash,
            archive.packed_bytes,
            archive.unpacked_bytes,
        )
    }

    fn declare_inner(
        &mut self,
        name: String,
        hash: ContentHash,
        size: u64,
        unpacked: u64,
    ) -> FileRef {
        if let Some(id) = self.by_hash.get(&hash) {
            return self.by_id[id].clone();
        }
        let id = FileId(self.next_id);
        self.next_id += 1;
        let mut f = FileRef::new(id, name, hash, size);
        f.unpacked_bytes = unpacked;
        self.by_hash.insert(hash, id);
        self.by_id.insert(id, f.clone());
        f
    }

    pub fn get(&self, id: FileId) -> Result<&FileRef> {
        self.by_id
            .get(&id)
            .ok_or_else(|| VineError::Data(format!("unknown file {id}")))
    }

    pub fn lookup_hash(&self, hash: ContentHash) -> Option<&FileRef> {
        self.by_hash.get(&hash).map(|id| &self.by_id[id])
    }

    /// Mark an existing file as sourced from the shared filesystem (L1
    /// mode: workers pull it from the shared FS instead of the manager).
    pub fn set_source(&mut self, id: FileId, source: FileSource) -> Result<()> {
        let f = self
            .by_id
            .get_mut(&id)
            .ok_or_else(|| VineError::Data(format!("unknown file {id}")))?;
        f.source = source;
        Ok(())
    }

    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = &FileRef> {
        self.by_id.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vine_env::catalog;
    use vine_env::resolve::resolve;

    #[test]
    fn declare_bytes_dedups_identical_content() {
        let mut store = ContentStore::new();
        let a = store.declare_bytes("args-1.bin", b"payload");
        let b = store.declare_bytes("args-2.bin", b"payload");
        assert_eq!(a.id, b.id, "identical content must be one file");
        assert_eq!(a.name, "args-1.bin", "first declaration names the file");
        assert_eq!(store.len(), 1);

        let c = store.declare_bytes("other.bin", b"different");
        assert_ne!(a.id, c.id);
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn declare_environment_carries_unpacked_size() {
        let reg = catalog::standard_registry();
        let res = resolve(&reg, &catalog::lnni_requirements()).unwrap();
        let archive = vine_env::pack("lnni-env", &res);
        let mut store = ContentStore::new();
        let f = store.declare_environment(&archive);
        assert_eq!(f.size_bytes, catalog::LNNI_PACKED_BYTES);
        assert_eq!(f.materialized_bytes(), catalog::LNNI_UNPACKED_BYTES);
        // same archive → same file
        let f2 = store.declare_environment(&archive);
        assert_eq!(f.id, f2.id);
    }

    #[test]
    fn lookup_paths() {
        let mut store = ContentStore::new();
        let f = store.declare_bytes("x", b"abc");
        assert_eq!(store.get(f.id).unwrap().hash, f.hash);
        assert_eq!(store.lookup_hash(f.hash).unwrap().id, f.id);
        assert!(store.get(FileId(999)).is_err());
        assert!(store.lookup_hash(ContentHash::of_str("nope")).is_none());
    }

    #[test]
    fn set_source_marks_shared_fs() {
        use vine_core::context::FileSource;
        let mut store = ContentStore::new();
        let f = store.declare_bytes("x", b"abc");
        store.set_source(f.id, FileSource::SharedFs).unwrap();
        assert_eq!(store.get(f.id).unwrap().source, FileSource::SharedFs);
        assert!(store.set_source(FileId(42), FileSource::SharedFs).is_err());
    }
}
