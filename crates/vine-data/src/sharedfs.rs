//! Shared-filesystem contention model.
//!
//! The paper's L1 baseline pulls all data and software dependencies from a
//! Panasas ActiveStor 16 "with 77 nodes supporting up to 84 Gb/s read
//! bandwidth and 94,000 read IOPS" (§4.2), and identifies it as the I/O
//! bottleneck L2 removes. We model it as two fair-shared fluid resources:
//!
//! * **bandwidth** — each of `n` concurrent readers streams at
//!   `min(client_link, aggregate / n)`;
//! * **metadata IOPS** — each of `m` concurrent metadata clients performs
//!   operations at `iops / m` (the Python import storm issues thousands of
//!   opens/stats per interpreter start).
//!
//! The discrete-event simulator recomputes flow rates whenever the set of
//! active flows changes; these functions are the rate law.

use serde::{Deserialize, Serialize};
use vine_core::SimDuration;

/// Fair-share rate law for a shared filesystem.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SharedFsModel {
    /// Aggregate read bandwidth in bytes/second (84 Gb/s ⇒ 10.5e9).
    pub aggregate_bytes_per_sec: f64,
    /// Per-client NIC ceiling in bytes/second (10 Gb/s ⇒ 1.25e9).
    pub client_link_bytes_per_sec: f64,
    /// Aggregate metadata operations per second.
    pub iops: f64,
}

impl SharedFsModel {
    /// The paper's Panasas ActiveStor 16 (§4.2).
    pub fn paper() -> SharedFsModel {
        SharedFsModel {
            aggregate_bytes_per_sec: 10.5e9,
            client_link_bytes_per_sec: 1.25e9,
            iops: 94_000.0,
        }
    }

    /// Bytes/second each reader gets with `readers` concurrent streams.
    pub fn read_rate(&self, readers: usize) -> f64 {
        if readers == 0 {
            return self.client_link_bytes_per_sec;
        }
        (self.aggregate_bytes_per_sec / readers as f64).min(self.client_link_bytes_per_sec)
    }

    /// Metadata ops/second each client gets with `clients` concurrent.
    pub fn op_rate(&self, clients: usize) -> f64 {
        if clients == 0 {
            return self.iops;
        }
        self.iops / clients as f64
    }

    /// Time for one reader to read `bytes` at a *fixed* concurrency level
    /// (the simulator integrates over changing concurrency instead; this is
    /// the closed form used by tests and quick estimates).
    pub fn read_time(&self, bytes: u64, readers: usize) -> SimDuration {
        SimDuration::for_transfer(bytes, self.read_rate(readers))
    }

    /// Time for one client to perform `ops` metadata operations at a fixed
    /// concurrency level.
    pub fn ops_time(&self, ops: f64, clients: usize) -> SimDuration {
        if ops <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_secs_f64(ops / self.op_rate(clients))
    }

    /// The reader count at which aggregate bandwidth, not the client link,
    /// becomes the binding constraint.
    pub fn saturation_readers(&self) -> usize {
        (self.aggregate_bytes_per_sec / self.client_link_bytes_per_sec).ceil() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_reader_is_link_bound() {
        let fs = SharedFsModel::paper();
        assert_eq!(fs.read_rate(1), 1.25e9);
        // 8 concurrent readers still fit under aggregate: 10.5/8 > 1.25
        assert_eq!(fs.read_rate(8), 1.25e9);
    }

    #[test]
    fn many_readers_share_aggregate() {
        let fs = SharedFsModel::paper();
        // paper's L1 steady state: ~285 effective concurrent readers get
        // ~36 MB/s each — which is why the ~340 MB of shared reads per task
        // take ~9.5 s of the 21.59 s mean L1 invocation runtime (Table 4)
        let rate = fs.read_rate(288);
        assert!((rate - 10.5e9 / 288.0).abs() < 1.0);
        assert!((35e6..38e6).contains(&rate), "rate {rate}");
        let t = fs.read_time(340_000_000, 288).as_secs_f64();
        assert!((8.5..10.5).contains(&t), "t {t}");
    }

    #[test]
    fn saturation_point() {
        let fs = SharedFsModel::paper();
        // 10.5e9 / 1.25e9 = 8.4 → 9 readers saturate the array
        assert_eq!(fs.saturation_readers(), 9);
        assert!(fs.read_rate(9) < fs.client_link_bytes_per_sec);
    }

    #[test]
    fn iops_fair_share() {
        let fs = SharedFsModel::paper();
        assert_eq!(fs.op_rate(1), 94_000.0);
        assert_eq!(fs.op_rate(1000), 94.0);
        // 1,500 import ops at 288 concurrent interpreters ≈ 4.6 s
        let t = fs.ops_time(1_500.0, 288).as_secs_f64();
        assert!((4.0..5.5).contains(&t), "t {t}");
        assert_eq!(fs.ops_time(0.0, 100), SimDuration::ZERO);
    }

    #[test]
    fn zero_concurrency_degenerate_cases() {
        let fs = SharedFsModel::paper();
        assert_eq!(fs.read_rate(0), fs.client_link_bytes_per_sec);
        assert_eq!(fs.op_rate(0), fs.iops);
    }
}
