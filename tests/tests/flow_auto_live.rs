//! Flow-based context discovery end to end: `Runtime::install_library_auto`
//! takes the naive user module, runs the vine-flow dataflow analysis, and
//! boots the synthesized library on a live cluster — hoisted setup once,
//! residue per instance, invocations observing exactly the state the
//! original module would have built.

use vine_core::context::LibrarySpec;
use vine_core::ids::InvocationId;
use vine_core::resources::Resources;
use vine_core::task::{FunctionCall, WorkUnit};
use vine_lang::{pickle, Value};
use vine_runtime::{decode_result, Runtime, RuntimeConfig};

/// The naive module: model build and label table are invocation-invariant,
/// `served` is mutable per-invocation state, and `capacity` reads the
/// mutated counter — syntactically stuck as residue, but constant-foldable.
const USER_MODULE: &str = r#"
import nn

model_dim = 24
model = nn.load_model(3, model_dim)
labels = ["cat", "dog", "ship"]
served = 0
capacity = served + 4096
print("library online")

def classify(img) {
    global served
    served = served + 1
    cls = nn.forward(model, img)
    return labels[cls % len(labels)]
}

def remaining() {
    return capacity - served
}
"#;

#[test]
fn flow_install_auto_runs_on_live_cluster() {
    let mut rt = Runtime::new(RuntimeConfig {
        workers: 1,
        registry: vine_apps::modules::full_registry(),
        ..Default::default()
    });
    let mut spec = LibrarySpec::new("auto");
    spec.resources = Some(Resources::new(2, 1024, 1024));
    spec.slots = Some(1);
    let flow = rt
        .install_library_auto(spec, USER_MODULE, &["classify", "remaining"])
        .unwrap();

    // the flow pass hoisted the model, the labels, and the folded capacity;
    // the counter and the print stayed residue
    assert!(flow.context.provides.contains(&"model".to_string()));
    assert!(flow.context.provides.contains(&"capacity".to_string()));
    assert!(!flow.context.provides.contains(&"served".to_string()));
    assert_eq!(flow.folded, 1);
    assert!(
        flow.context.residue.iter().any(|r| r.contains("print")),
        "{:?}",
        flow.context.residue
    );

    for i in 0..5u64 {
        rt.submit(WorkUnit::Call(FunctionCall::new(
            InvocationId(i),
            "auto",
            "classify",
            pickle::serialize_args(&[Value::Int(i as i64)]).unwrap(),
        )));
    }
    rt.submit(WorkUnit::Call(FunctionCall::new(
        InvocationId(100),
        "auto",
        "remaining",
        pickle::serialize_args(&[]).unwrap(),
    )));
    let outcomes = rt.run_until_idle().unwrap();
    assert_eq!(outcomes.len(), 6);
    for o in &outcomes {
        assert!(o.success, "{:?}", o.error);
    }
    // `remaining` ran after some number of classifies on the same instance:
    // capacity folded to 4096, served in [0, 5]
    let rem = outcomes
        .iter()
        .find(|o| o.unit == vine_core::task::UnitId::Call(InvocationId(100)))
        .map(|o| decode_result(o).unwrap())
        .unwrap();
    let Value::Int(rem) = rem else {
        panic!("remaining() returned {rem:?}")
    };
    assert!((4091..=4096).contains(&rem), "{rem}");
    rt.shutdown();
}

#[test]
fn flow_auto_boot_matches_direct_execution() {
    // the shipped construction (setup + defs + boot + residue) must agree
    // with running the module directly — same results, same counter
    let registry = vine_apps::modules::full_registry();
    let mut direct = vine_lang::Interp::with_registry(registry.clone());
    direct.exec_source(USER_MODULE).unwrap();

    let flow = vine_flow::discover(USER_MODULE, &["classify", "remaining"]).unwrap();
    let mut auto = vine_lang::Interp::with_registry(registry);
    auto.exec_source(&flow.context.setup_source).unwrap();
    let prog = vine_lang::parse(USER_MODULE).unwrap();
    for s in &prog {
        if let vine_lang::ast::StmtKind::FuncDef(f) = &s.kind {
            auto.exec_source(&vine_lang::inspect::format_funcdef(f))
                .unwrap();
        }
    }
    auto.exec_source("context_setup()").unwrap();
    for r in &flow.context.residue {
        auto.exec_source(r).unwrap();
    }

    for img in 0..10i64 {
        let a = direct.call_global("classify", &[Value::Int(img)]).unwrap();
        let b = auto.call_global("classify", &[Value::Int(img)]).unwrap();
        assert_eq!(a, b, "img {img}");
    }
    assert_eq!(
        direct.call_global("remaining", &[]).unwrap(),
        auto.call_global("remaining", &[]).unwrap()
    );
    assert_eq!(
        direct.get_global("served").unwrap(),
        auto.get_global("served").unwrap()
    );
}
