//! The paper's future-work extension end to end: automatically discover a
//! function's context from plain module source — no user-written
//! `context_setup`, no manual dependency list — and run it on the live
//! cluster.

use vine_core::context::{ContextSpec, LibrarySpec, SetupSpec};
use vine_core::ids::InvocationId;
use vine_core::resources::Resources;
use vine_core::task::{FunctionCall, WorkUnit};
use vine_lang::{autocontext, pickle, Value};
use vine_runtime::{decode_result, Runtime, RuntimeConfig};

/// A user writes ordinary module-level code: expensive setup inline, no
/// separation into context_setup/work (the "naive" module the paper says
/// users actually write).
const USER_MODULE: &str = r#"
import nn

model = nn.load_model(3, 24)
labels = ["cat", "dog", "ship"]
served = 0

def classify(img) {
    global served
    served = served + 1
    cls = nn.forward(model, img)
    return labels[cls % 3]
}
"#;

#[test]
fn auto_discovered_context_runs_on_live_cluster() {
    // discover: the model build and labels hoist; the served counter stays
    // per-invocation state
    let ctx = autocontext::discover(USER_MODULE, &["classify"]).unwrap();
    assert!(ctx.provides.contains(&"model".to_string()));
    assert!(ctx.provides.contains(&"labels".to_string()));
    assert!(!ctx.provides.contains(&"served".to_string()));
    assert_eq!(ctx.imports, vec!["nn".to_string()]);

    // resolve the discovered imports against the package catalog, exactly
    // as the manual pipeline would
    let registry = vine_env::catalog::standard_registry();
    let reqs: Vec<vine_env::Requirement> = ctx
        .imports
        .iter()
        .map(|m| vine_env::Requirement::any(m.clone()))
        .collect();
    let resolution = vine_env::resolve(&registry, &reqs).unwrap();
    assert!(vine_env::pack("auto-env", &resolution).provides("nn"));

    // assemble a library purely from discovery output
    let mut rt = Runtime::new(RuntimeConfig {
        workers: 1,
        registry: vine_apps::modules::full_registry(),
        ..Default::default()
    });
    let mut spec = LibrarySpec::new("auto");
    spec.functions = vec!["classify".into()];
    spec.resources = Some(Resources::new(2, 1024, 1024));
    spec.slots = Some(1);
    spec.context = ContextSpec {
        setup: Some(SetupSpec {
            function: "context_setup".into(),
            args_blob: vec![],
        }),
        ..Default::default()
    };
    // residue (the mutable counter) re-runs per library boot, outside the
    // shared reusable context
    let shipped = format!(
        "{}\n{}\n{}",
        ctx.setup_source,
        ctx.code_source,
        ctx.residue.join("\n")
    );
    rt.install_library(spec, &shipped, vec![], &[]).unwrap();

    for i in 0..6u64 {
        rt.submit(WorkUnit::Call(FunctionCall::new(
            InvocationId(i),
            "auto",
            "classify",
            pickle::serialize_args(&[Value::Int(i as i64)]).unwrap(),
        )));
    }
    let outcomes = rt.run_until_idle().unwrap();
    assert_eq!(outcomes.len(), 6);
    for o in &outcomes {
        assert!(o.success, "{:?}", o.error);
        let label = decode_result(o).unwrap();
        let label = label.as_str().unwrap().to_string();
        assert!(["cat", "dog", "ship"].contains(&label.as_str()), "{label}");
    }
    rt.shutdown();
}

#[test]
fn auto_and_manual_context_agree() {
    // the auto-discovered split must compute the same results as running
    // the original module directly
    let mut direct = vine_lang::Interp::with_registry(vine_apps::modules::full_registry());
    direct.exec_source(USER_MODULE).unwrap();

    let ctx = autocontext::discover(USER_MODULE, &["classify"]).unwrap();
    let mut auto = vine_lang::Interp::with_registry(vine_apps::modules::full_registry());
    auto.exec_source(&ctx.setup_source).unwrap();
    auto.exec_source(&ctx.code_source).unwrap();
    auto.exec_source(&ctx.residue.join("\n")).unwrap();
    auto.exec_source("context_setup()").unwrap();

    for img in 0..10i64 {
        let a = direct.call_global("classify", &[Value::Int(img)]).unwrap();
        let b = auto.call_global("classify", &[Value::Int(img)]).unwrap();
        assert_eq!(a, b, "img {img}");
    }
    // both tracked their own invocation counters identically
    assert_eq!(
        direct.get_global("served").unwrap(),
        auto.get_global("served").unwrap()
    );
}
