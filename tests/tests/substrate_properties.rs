//! Property-based tests over the substrates' core invariants:
//! dependency resolution, broadcast planning, and cache accounting.

use proptest::prelude::*;
use vine_core::ids::{ContentHash, WorkerId};
use vine_data::WorkerCache;
use vine_env::{resolve, Constraint, PackageRegistry, PackageSpec, Requirement, Version};
use vine_transfer::{plan_broadcast, Node, Topology};

// ---- resolver ----

/// A random acyclic package universe: package i may depend only on
/// packages with larger indices (guaranteed DAG).
fn arb_registry() -> impl Strategy<Value = (PackageRegistry, usize)> {
    (2usize..30).prop_flat_map(|n| {
        let deps = prop::collection::vec(prop::collection::vec(0usize..100, 0..4), n);
        deps.prop_map(move |dep_lists| {
            let mut reg = PackageRegistry::new();
            for (i, raw) in dep_lists.iter().enumerate() {
                let deps: Vec<Requirement> = raw
                    .iter()
                    .filter_map(|r| {
                        let target = i + 1 + (r % (n - i));
                        if target < n {
                            Some(Requirement::any(format!("pkg{target}")))
                        } else {
                            None
                        }
                    })
                    .collect();
                reg.add(
                    PackageSpec::new(format!("pkg{i}"), Version(1, 0, 0))
                        .with_deps(deps)
                        .with_sizes((i as u64 + 1) * 10, (i as u64 + 1) * 40, 5),
                );
            }
            (reg, n)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn resolution_is_topological_and_deduplicated((reg, _n) in arb_registry()) {
        let res = resolve(&reg, &[Requirement::any("pkg0")]).unwrap();
        // every dependency precedes its dependent
        let pos = |name: &str| res.packages.iter().position(|p| p.name == name);
        for p in &res.packages {
            let my_pos = pos(&p.name).unwrap();
            for dep in &p.deps {
                if let Some(dep_pos) = pos(&dep.name) {
                    prop_assert!(dep_pos < my_pos, "{} after {}", dep.name, p.name);
                }
            }
        }
        // no duplicates
        let mut names: Vec<&str> = res.packages.iter().map(|p| p.name.as_str()).collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        prop_assert_eq!(names.len(), before);
        // closure is complete: every dep of an included package is included
        for p in &res.packages {
            for dep in &p.deps {
                prop_assert!(res.contains(&dep.name), "missing {}", dep.name);
            }
        }
    }

    #[test]
    fn resolution_is_deterministic((reg, _n) in arb_registry()) {
        let a = resolve(&reg, &[Requirement::any("pkg0")]).unwrap();
        let b = resolve(&reg, &[Requirement::any("pkg0")]).unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn version_constraints_respected(
        major in 1u32..5,
        minor in 0u32..5,
    ) {
        let mut reg = PackageRegistry::new();
        for mj in 1..5u32 {
            for mn in 0..5u32 {
                reg.add(PackageSpec::new("multi", Version(mj, mn, 0)));
            }
        }
        let want = Version(major, minor, 0);
        let res = resolve(&reg, &[Requirement::exact("multi", want)]).unwrap();
        prop_assert_eq!(res.packages[0].version, want);
        let res = resolve(&reg, &[Requirement::at_least("multi", want)]).unwrap();
        prop_assert!(Constraint::AtLeast(want).satisfied_by(res.packages[0].version));
        // the resolver always picks the highest satisfying version
        prop_assert_eq!(res.packages[0].version, Version(4, 4, 0));
    }

    // ---- broadcast plans ----

    #[test]
    fn every_plan_covers_every_worker_exactly_once(
        n in 1u32..200,
        cap in 1usize..6,
        star in any::<bool>(),
    ) {
        let workers: Vec<WorkerId> = (0..n).map(WorkerId).collect();
        let topo = if star {
            Topology::Star
        } else {
            Topology::FullPeer { fanout_cap: cap }
        };
        let plan = plan_broadcast(&topo, &workers).unwrap();
        let mut dests: Vec<WorkerId> = plan.steps.iter().map(|s| s.dest).collect();
        dests.sort_unstable();
        prop_assert_eq!(dests, workers.clone());
        // sources always hold the file before sending
        let mut have = vec![Node::Manager];
        for s in &plan.steps {
            prop_assert!(have.contains(&s.source));
            have.push(Node::Worker(s.dest));
        }
        // dependencies point strictly backwards
        for (i, s) in plan.steps.iter().enumerate() {
            if let Some(d) = s.depends_on {
                prop_assert!(d < i);
            }
        }
    }

    #[test]
    fn tree_depth_beats_star_beyond_trivial_sizes(n in 8u32..300, cap in 1usize..5) {
        let workers: Vec<WorkerId> = (0..n).map(WorkerId).collect();
        let star = plan_broadcast(&Topology::Star, &workers).unwrap();
        let tree = plan_broadcast(&Topology::FullPeer { fanout_cap: cap }, &workers).unwrap();
        prop_assert!(tree.depth() < star.depth());
        // the holder set at least doubles per round (even at cap 1 the
        // manager keeps serving), and a node's dependency depth never
        // exceeds its round, so depth ≤ ceil(log2(n+1))
        let bound = ((n + 1) as f64).log2().ceil() as usize;
        prop_assert!(tree.depth() <= bound, "depth {} cap {cap} n {n}", tree.depth());
    }

    // ---- worker cache ----

    #[test]
    fn cache_never_exceeds_capacity_and_never_loses_pins(
        capacity in 100u64..10_000,
        ops in prop::collection::vec((0u64..200, 1u64..400, any::<bool>()), 1..200),
    ) {
        let mut cache = WorkerCache::new(capacity);
        let mut pinned: Vec<ContentHash> = Vec::new();
        for (key, size, pin) in ops {
            let h = ContentHash::of_bytes(&key.to_le_bytes());
            if cache.insert(h, size.min(capacity)).is_ok() {
                prop_assert!(cache.used() <= cache.capacity());
                if pin && !pinned.contains(&h) && cache.contains(h) {
                    cache.pin(h).unwrap();
                    pinned.push(h);
                }
            }
            // every pinned entry is still resident
            for p in &pinned {
                prop_assert!(cache.contains(*p), "pinned entry evicted");
            }
        }
        // unpinning everything makes the whole cache evictable again
        for p in pinned.drain(..) {
            cache.unpin(p).unwrap();
        }
        let big = ContentHash::of_str("fills-everything");
        if cache.insert(big, capacity).is_ok() {
            prop_assert_eq!(cache.used(), capacity);
        }
    }
}
