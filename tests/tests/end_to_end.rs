//! Cross-crate integration: the discover → distribute → retain pipeline
//! end to end, on both execution substrates.

use integration_tests::small_lnni;
use vine_core::config::ReuseLevel;
use vine_core::context::{ContextSpec, LibrarySpec, SetupSpec};
use vine_core::ids::InvocationId;
use vine_core::resources::Resources;
use vine_core::task::{FunctionCall, UnitId, WorkUnit};
use vine_lang::{inspect, pickle, Value};
use vine_runtime::{decode_result, Runtime, RuntimeConfig};

/// The full discover pipeline on real application code: extract source,
/// scan imports, resolve the environment, pack the archive — then boot a
/// live library from exactly those pieces and execute invocations.
#[test]
fn discover_package_execute_pipeline() {
    let app_src = vine_apps::lnni::LNNI_SOURCE;

    // element 1: function code via inspection
    let infer_src = inspect::extract_source(app_src, "infer").expect("source form exists");
    let setup_src = inspect::extract_source(app_src, "context_setup").expect("setup has source");

    // element 2: dependencies via AST scan + resolution + packaging
    let prog = vine_lang::parse(app_src).unwrap();
    let imports = inspect::scan_imports(&prog);
    assert_eq!(imports, vec!["nn".to_string()]);
    let registry = vine_env::catalog::standard_registry();
    let reqs: Vec<vine_env::Requirement> = imports
        .iter()
        .map(|m| vine_env::Requirement::any(m.clone()))
        .collect();
    let resolution = vine_env::resolve(&registry, &reqs).unwrap();
    let archive = vine_env::pack("pipeline-env", &resolution);
    assert!(archive.provides("nn"));
    assert_eq!(archive.package_count(), 144, "the paper's environment");

    // elements 3+4 and execution: boot a library from the discovered
    // source on a live worker whose module registry has what the archive
    // provides
    let mut module_registry = vine_lang::ModuleRegistry::new();
    assert!(archive.provides("nn"));
    module_registry.register_native("nn", vine_apps::modules::nn_module);

    let mut rt = Runtime::new(RuntimeConfig {
        workers: 1,
        registry: module_registry,
        ..Default::default()
    });
    let mut spec = LibrarySpec::new("lnni");
    spec.functions = vec!["infer".into()];
    spec.resources = Some(Resources::new(2, 1024, 1024));
    spec.slots = Some(1);
    spec.context = ContextSpec {
        setup: Some(SetupSpec {
            function: "context_setup".into(),
            args_blob: vec![],
        }),
        ..Default::default()
    };
    // ship ONLY the discovered pieces (import line + extracted functions)
    let shipped_source = format!("import nn\n{setup_src}\n{infer_src}");
    rt.install_library(
        spec,
        &shipped_source,
        vec![],
        &[Value::Int(2), Value::Int(16)],
    )
    .unwrap();

    let call = FunctionCall::new(
        InvocationId(1),
        "lnni",
        "infer",
        pickle::serialize_args(&[Value::Int(0), Value::Int(4)]).unwrap(),
    );
    rt.submit(WorkUnit::Call(call));
    let outcomes = rt.run_until_idle().unwrap();
    assert_eq!(outcomes.len(), 1);
    assert!(outcomes[0].success, "{:?}", outcomes[0].error);
    let Value::List(classes) = decode_result(&outcomes[0]).unwrap() else {
        panic!("expected classes");
    };
    assert_eq!(classes.borrow().len(), 4);
    rt.shutdown();
}

/// A function with no source form (built via exec) still ships — the
/// cloudpickle path end to end.
#[test]
fn sourceless_function_ships_serialized() {
    let mut origin = vine_lang::Interp::new();
    origin
        .exec_source(r#"exec("def dynamic_fn(x) { return x * 19 }")"#)
        .unwrap();
    // inspection fails: the function never existed in module source
    assert!(inspect::extract_source("", "dynamic_fn").is_none());
    // ... so serialize the code object instead
    let Value::Func(f) = origin.get_global("dynamic_fn").unwrap() else {
        panic!()
    };
    let blob = pickle::serialize_funcdef(&f.def);

    let mut rt = Runtime::new(RuntimeConfig {
        workers: 1,
        ..Default::default()
    });
    let mut spec = LibrarySpec::new("dyn");
    spec.functions = vec!["dynamic_fn".into()];
    spec.resources = Some(Resources::new(1, 256, 256));
    spec.slots = Some(1);
    rt.install_library(spec, "", vec![blob], &[]).unwrap();
    rt.submit(WorkUnit::Call(FunctionCall::new(
        InvocationId(1),
        "dyn",
        "dynamic_fn",
        pickle::serialize_args(&[Value::Int(3)]).unwrap(),
    )));
    let outcomes = rt.run_until_idle().unwrap();
    assert_eq!(decode_result(&outcomes[0]).unwrap(), Value::Int(57));
    rt.shutdown();
}

/// The headline invariant on the simulator at a small scale: more context
/// reuse, less execution time — and all three substrates agree on who
/// wins.
#[test]
fn reuse_ordering_holds_at_small_scale() {
    let l1 = small_lnni(ReuseLevel::L1, 2_000, 16);
    let l2 = small_lnni(ReuseLevel::L2, 2_000, 16);
    let l3 = small_lnni(ReuseLevel::L3, 2_000, 16);
    assert_eq!(l1.trace.invocations.len(), 2_000);
    assert_eq!(l2.trace.invocations.len(), 2_000);
    assert_eq!(l3.trace.invocations.len(), 2_000);
    let (t1, t2, t3) = (
        l1.makespan.as_secs_f64(),
        l2.makespan.as_secs_f64(),
        l3.makespan.as_secs_f64(),
    );
    assert!(t1 > t2 && t2 > t3, "L1 {t1} > L2 {t2} > L3 {t3}");
    // per-invocation runtimes order the same way (Table 4's shape)
    let m1 = l1.trace.runtime_stats().mean;
    let m2 = l2.trace.runtime_stats().mean;
    let m3 = l3.trace.runtime_stats().mean;
    assert!(m1 > m2 && m2 > m3, "means {m1} > {m2} > {m3}");
}

/// The same scheduler brain drives the simulator and the live runtime:
/// submit identical workloads to both and check structural agreement
/// (everything completes; libraries are reused, not re-created per call).
#[test]
fn sim_and_live_agree_structurally() {
    // live
    let mut rt = Runtime::new(RuntimeConfig {
        workers: 2,
        worker_resources: Resources::new(4, 4096, 4096),
        ..Default::default()
    });
    let mut spec = LibrarySpec::new("m");
    spec.functions = vec!["f".into()];
    spec.resources = Some(Resources::new(2, 1024, 1024));
    spec.slots = Some(1);
    rt.install_library(spec, "def f(x) { return x + 1 }", vec![], &[])
        .unwrap();
    for i in 0..30 {
        rt.submit(WorkUnit::Call(FunctionCall::new(
            InvocationId(i),
            "m",
            "f",
            pickle::serialize_args(&[Value::Int(i as i64)]).unwrap(),
        )));
    }
    let outcomes = rt.run_until_idle().unwrap();
    assert_eq!(outcomes.len(), 30);
    assert!(outcomes.iter().all(|o| o.success));
    let live_instances = rt.library_share_values().len();
    let live_served: u64 = rt.library_share_values().iter().map(|(_, s)| s).sum();
    assert_eq!(live_served, 30);
    assert!(live_instances <= 4, "2 workers × ≤2 instances");
    rt.shutdown();

    // sim (same shape: few instances serve many invocations)
    let r = small_lnni(ReuseLevel::L3, 200, 2);
    let sim_served: u64 = r.trace.libraries.iter().map(|l| l.served).sum();
    assert_eq!(sim_served, 200);
    assert!(r.trace.libraries.len() <= 32);
}

/// Failure containment across the stack: a poisoned invocation fails, its
/// successors run, a worker death recovers, and totals still add up.
#[test]
fn fault_injection_end_to_end() {
    let mut rt = Runtime::new(RuntimeConfig {
        workers: 2,
        ..Default::default()
    });
    let mut spec = LibrarySpec::new("m");
    spec.functions = vec!["f".into()];
    spec.resources = Some(Resources::new(1, 512, 512));
    spec.slots = Some(2);
    rt.install_library(
        spec,
        "def f(x) { if x == 13 { return 1 / 0 }\nreturn x }",
        vec![],
        &[],
    )
    .unwrap();
    for i in 0..20 {
        rt.submit(WorkUnit::Call(FunctionCall::new(
            InvocationId(i),
            "m",
            "f",
            pickle::serialize_args(&[Value::Int(i as i64)]).unwrap(),
        )));
    }
    rt.kill_worker(vine_core::ids::WorkerId(1));
    let outcomes = rt.run_until_idle().unwrap();
    assert_eq!(outcomes.len(), 20);
    let failures: Vec<_> = outcomes.iter().filter(|o| !o.success).collect();
    assert_eq!(failures.len(), 1, "exactly the poisoned invocation fails");
    assert_eq!(failures[0].unit, UnitId::Call(InvocationId(13)));
    rt.shutdown();
}

/// Simulator fault tolerance at application scale.
#[test]
fn sim_survives_mid_run_worker_loss() {
    let mut w = vine_apps::LnniWorkload::new(vine_apps::LnniConfig {
        invocations: 500,
        inferences_per_invocation: 16,
        level: ReuseLevel::L3,
        seed: 3,
        library_strategy: vine_apps::lnni::LibraryStrategy::PerSlot,
    });
    let mut cfg = vine_sim::SimConfig::paper(ReuseLevel::L3, 4);
    cfg.fail_workers = vec![(45.0, 0), (60.0, 2)];
    let r = vine_sim::simulate(cfg, &mut w);
    assert_eq!(
        r.trace.invocations.len(),
        500,
        "all invocations complete despite losing half the cluster"
    );
}
