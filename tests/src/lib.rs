//! Shared helpers for the cross-crate integration tests.

use vine_core::config::ReuseLevel;
use vine_sim::SimResult;

/// Run LNNI in the simulator at a small scale suitable for CI.
pub fn small_lnni(level: ReuseLevel, invocations: u64, workers: usize) -> SimResult {
    let mut w = vine_apps::LnniWorkload::new(vine_apps::LnniConfig {
        invocations,
        inferences_per_invocation: 16,
        level,
        seed: 0xC1,
        library_strategy: vine_apps::lnni::LibraryStrategy::PerSlot,
    });
    vine_sim::simulate(vine_sim::SimConfig::paper(level, workers), &mut w)
}
