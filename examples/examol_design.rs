//! ExaMol — active-learning molecular design (§4.1.2) in both forms:
//!
//! 1. **live**: a real (tiny) active-learning loop over the DAG layer —
//!    simulate seed molecules, train a surrogate, let it steer which
//!    molecule to simulate next, repeat;
//! 2. **simulated**: the 10k-task Colmena-style feedback workload on the
//!    150-worker cluster, comparing L1/L2 (Fig 6b) plus our L3 extension.
//!
//! ```text
//! cargo run --release -p vine-examples --bin examol_design [-- scale]
//! ```

use vine_apps::examol::{ExaMolConfig, ExaMolWorkload, EXAMOL_SOURCE};
use vine_apps::modules::full_registry;
use vine_core::config::ReuseLevel;
use vine_core::context::{ContextSpec, LibrarySpec, SetupSpec};
use vine_core::resources::Resources;
use vine_dag::{App, Arg};
use vine_lang::Value;
use vine_runtime::{Runtime, RuntimeConfig};
use vine_sim::{simulate, SimConfig};

fn live_active_learning() {
    println!("== live: active-learning loop over the DAG layer ==");
    let mut rt = Runtime::new(RuntimeConfig {
        workers: 2,
        registry: full_registry(),
        ..Default::default()
    });
    let mut spec = LibrarySpec::new("examol");
    spec.functions = vec!["simulate".into(), "train".into(), "infer".into()];
    spec.resources = Some(Resources::new(2, 2048, 2048));
    spec.slots = Some(2);
    spec.context = ContextSpec {
        setup: Some(SetupSpec {
            function: "context_setup".into(),
            args_blob: vec![],
        }),
        ..Default::default()
    };
    // context setup simulates 8 seed molecules into the shared dataset
    rt.install_library(spec, EXAMOL_SOURCE, vec![], &[Value::Int(8)])
        .expect("library installs");

    // one steering round as a DAG: train on the seeds, let the surrogate
    // pick the best of a candidate batch, then verify it with a full
    // simulation — y = simulate(infer(train(), candidates))
    let mut app = App::new(rt);
    let model = app.invoke("examol", "train", vec![]);
    let candidates = Value::list((100..120).map(Value::Int).collect());
    let pick = app.invoke(
        "examol",
        "infer",
        vec![Arg::ResultOf(model), Arg::Val(candidates)],
    );
    let energy = app.invoke(
        "examol",
        "simulate",
        vec![Arg::ResultOf(pick), Arg::Val(Value::Int(2_000))],
    );
    let results = app.run().expect("steering round runs");
    println!(
        "  surrogate picked molecule {} -> verified ionization energy {:.4}",
        results[&pick], results[&energy]
    );
    app.shutdown();
}

fn simulated_cluster(scale: f64) {
    println!("\n== simulated: ExaMol at paper scale × {scale} (Fig 6b) ==");
    let tasks = ((10_000.0 * scale) as u64).max(100);
    let mut times = Vec::new();
    for level in ReuseLevel::ALL {
        let mut cfg = ExaMolConfig::paper(level);
        cfg.total_tasks = tasks;
        cfg.initial_batch = cfg.initial_batch.min(tasks);
        let mut workload = ExaMolWorkload::new(cfg);
        let r = simulate(SimConfig::paper(level, 150), &mut workload);
        let label = if level == ReuseLevel::L3 {
            "L3 (our extension)"
        } else {
            level.name()
        };
        println!(
            "  {label:18}: {tasks} tasks on 150 workers -> {:8.1} s",
            r.makespan.as_secs_f64()
        );
        times.push(r.makespan.as_secs_f64());
    }
    println!(
        "  L1 -> L2 reduction: {:.1}% (paper: 26.9% at full scale)",
        (1.0 - times[1] / times[0]) * 100.0
    );
}

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.05);
    live_active_learning();
    simulated_cluster(scale);
}
