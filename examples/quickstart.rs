//! Quickstart: the paper's Fig 5 code sample, in vine-rs.
//!
//! A user breaks a computation into `context_setup` (expensive, reusable)
//! and `f` (cheap, per-invocation), creates a library for it, installs the
//! library, and submits invocations that carry only their arguments.
//!
//! ```text
//! cargo run -p vine-examples --bin quickstart
//! ```

use vine_core::context::{ContextSpec, LibrarySpec, SetupSpec};
use vine_core::ids::InvocationId;
use vine_core::resources::Resources;
use vine_core::task::{FunctionCall, WorkUnit};
use vine_lang::{pickle, Value};
use vine_runtime::{decode_result, Runtime, RuntimeConfig};

// The application's functions, in vine-lang. `context_setup` builds state
// once and publishes it via `global`; `f` reuses it on every invocation
// (the paper's Fig 4 pattern).
const FUNCTIONS: &str = r#"
def context_setup(y) {
    global lookup_table
    lookup_table = []
    for i in range(y) {
        push(lookup_table, i * i)
    }
}

def f(x) {
    return lookup_table[x] + x
}
"#;

fn main() {
    // manager = vine.Manager(...)          (Fig 5, line 6)
    let mut manager = Runtime::new(RuntimeConfig {
        workers: 2,
        ..Default::default()
    });

    // library = manager.create_library_from_functions('lib', f,
    //     context=context_setup, context_args=[y])   (Fig 5, lines 7-8)
    let mut library = LibrarySpec::new("lib");
    library.functions = vec!["f".into()];
    library.resources = Some(Resources::new(2, 1024, 1024));
    library.slots = Some(2);
    library.context = ContextSpec {
        setup: Some(SetupSpec {
            function: "context_setup".into(),
            args_blob: vec![],
        }),
        ..Default::default()
    };

    // manager.install_library(library)     (Fig 5, line 12)
    manager
        .install_library(library, FUNCTIONS, vec![], &[Value::Int(1000)])
        .expect("library installs");

    // for i in range(10):
    //     invocation = vine.FunctionCall('lib', 'f', args=[i])
    //     manager.submit(invocation)       (Fig 5, lines 14-16)
    for i in 0..10i64 {
        let call = FunctionCall::new(
            InvocationId(i as u64),
            "lib",
            "f",
            pickle::serialize_args(&[Value::Int(i)]).expect("args serialize"),
        );
        manager.submit(WorkUnit::Call(call));
    }

    let outcomes = manager.run_until_idle().expect("cluster runs");
    let mut results: Vec<(u64, i64)> = outcomes
        .iter()
        .map(|o| {
            let vine_core::task::UnitId::Call(id) = o.unit else {
                unreachable!()
            };
            let v = decode_result(o).expect("result decodes");
            (id.0, v.as_int().expect("int result"))
        })
        .collect();
    results.sort_unstable();

    println!("f(x) = lookup_table[x] + x, with the table built ONCE per library:");
    for (x, y) in &results {
        assert_eq!(*y, (*x * *x + *x) as i64);
        println!("  f({x}) = {y}");
    }
    println!(
        "\nlibrary share values (invocations served per deployed context): {:?}",
        manager
            .library_share_values()
            .iter()
            .map(|(w, s)| format!("{w}:{s}"))
            .collect::<Vec<_>>()
    );
    manager.shutdown();
    println!("done.");
}
