//! Context distribution end to end (§2.2.2, §3.2–3.3): discover a
//! function's context — code, dependencies, data, setup — package it, and
//! compare the three broadcast strategies of Fig 3 for getting it to 150
//! workers.
//!
//! ```text
//! cargo run -p vine-examples --bin broadcast_strategies
//! ```

use vine_core::ids::WorkerId;
use vine_core::CostModel;
use vine_core::SimDuration;
use vine_env::catalog;
use vine_lang::inspect;
use vine_transfer::{plan_broadcast, Topology};

const APP_SOURCE: &str = vine_apps::lnni::LNNI_SOURCE;

fn main() {
    // -- discover --------------------------------------------------------
    println!("== discover: the four context elements of `infer` ==");
    let source = inspect::extract_source(APP_SOURCE, "infer").expect("source recoverable");
    println!(
        "1. function code ({} bytes, via source inspection):\n{}",
        source.len(),
        source
            .lines()
            .map(|l| format!("     {l}"))
            .collect::<Vec<_>>()
            .join("\n")
    );

    let prog = vine_lang::parse(APP_SOURCE).expect("parses");
    let imports = inspect::scan_imports(&prog);
    println!("2. software dependencies (AST import scan): {imports:?}");

    let registry = catalog::standard_registry();
    let requirements: Vec<vine_env::Requirement> = imports
        .iter()
        .map(|m| vine_env::Requirement::any(m.clone()))
        .collect();
    let resolution = vine_env::resolve(&registry, &requirements).expect("resolves");
    let archive = vine_env::pack("lnni-env", &resolution);
    println!(
        "   resolved {} packages -> {:.0} MB packed, {:.1} GB unpacked, {} files",
        archive.package_count(),
        archive.packed_bytes as f64 / 1e6,
        archive.unpacked_bytes as f64 / 1e9,
        archive.file_count,
    );
    println!("3. input data: resnet50-params.bin (230 MB, content-addressed)");
    println!("4. environment setup: context_setup(layers, dim) runs once per library\n");

    // -- distribute ------------------------------------------------------
    println!(
        "== distribute: broadcasting {:.0} MB to 150 workers (Fig 3) ==",
        archive.packed_bytes as f64 / 1e6
    );
    let workers: Vec<WorkerId> = (0..150).map(WorkerId).collect();
    let cost = CostModel::paper();
    let hop = SimDuration::for_transfer(archive.packed_bytes, cost.nic_bytes_per_sec).as_secs_f64();
    println!("   (one hop over a 10 Gb/s link = {hop:.2} s)\n");

    let clusters = vec![workers[..100].to_vec(), workers[100..].to_vec()];
    let strategies = [
        ("(a) star: no worker-to-worker transfers", Topology::Star),
        (
            "(b) spanning tree: full peer transfers, cap 3",
            Topology::FullPeer { fanout_cap: 3 },
        ),
        (
            "(c) clustered: on-premise 100 + cloud 50, cap 3",
            Topology::Clustered {
                clusters,
                fanout_cap: 3,
            },
        ),
    ];
    for (label, topology) in strategies {
        let plan = plan_broadcast(&topology, &workers).expect("plans");
        println!(
            "   {label}\n      {} transfers, {} serialized rounds (~{:.1} s), {} from the manager",
            plan.steps.len(),
            plan.depth(),
            plan.depth() as f64 * hop,
            plan.manager_sends(),
        );
    }

    // the fan-out ablation (DESIGN.md §5)
    println!("\n== ablation: spanning-tree fan-out cap ==");
    for cap in [1usize, 2, 3, 4, 8, usize::MAX / 2] {
        let plan = plan_broadcast(&Topology::FullPeer { fanout_cap: cap }, &workers).unwrap();
        let cap_label = if cap > 1000 {
            "unbounded".to_string()
        } else {
            cap.to_string()
        };
        println!(
            "   cap {:>9}: depth {} (~{:.1} s), manager sends {}",
            cap_label,
            plan.depth(),
            plan.depth() as f64 * hop,
            plan.manager_sends(),
        );
    }
    println!("\nuncapped trees are shallow but sink every holder's uplink at once —");
    println!("the paper caps per-node transfers at N \"to avoid a sink in the spanning tree\".");
}
