//! LNNI — the paper's large-scale neural network inference application
//! (§4.1.1), in both of its vine-rs forms:
//!
//! 1. **live**: real inference on a real (small) model executed by the
//!    threaded runtime, demonstrating that invocations reuse the loaded
//!    model where tasks would rebuild it;
//! 2. **simulated**: the full 150-worker cluster at a configurable scale,
//!    comparing L1/L2/L3 execution time (Fig 6a's shape).
//!
//! ```text
//! cargo run --release -p vine-examples --bin lnni_inference [-- scale]
//! ```

use vine_apps::lnni::{LibraryStrategy, LnniConfig, LnniWorkload, LNNI_SOURCE};
use vine_apps::modules::full_registry;
use vine_core::config::ReuseLevel;
use vine_core::context::{ContextSpec, LibrarySpec, SetupSpec};
use vine_core::ids::InvocationId;
use vine_core::resources::Resources;
use vine_core::task::{FunctionCall, WorkUnit};
use vine_lang::{pickle, Value};
use vine_runtime::{decode_result, Runtime, RuntimeConfig};
use vine_sim::{simulate, SimConfig};

fn live_inference() {
    println!("== live: ResNet-stand-in inference on the threaded runtime ==");
    let mut rt = Runtime::new(RuntimeConfig {
        workers: 2,
        registry: full_registry(),
        ..Default::default()
    });
    let mut spec = LibrarySpec::new("lnni");
    spec.functions = vec!["infer".into()];
    spec.resources = Some(Resources::new(2, 2048, 2048));
    spec.slots = Some(2);
    spec.context = ContextSpec {
        setup: Some(SetupSpec {
            function: "context_setup".into(),
            args_blob: vec![],
        }),
        ..Default::default()
    };
    // the model (6 layers × 64 dim) is loaded once per library instance
    rt.install_library(spec, LNNI_SOURCE, vec![], &[Value::Int(6), Value::Int(64)])
        .expect("library installs");

    let invocations = 24u64;
    let per_invocation = 16i64;
    for i in 0..invocations {
        let call = FunctionCall::new(
            InvocationId(i),
            "lnni",
            "infer",
            pickle::serialize_args(&[
                Value::Int(i as i64 * per_invocation),
                Value::Int(per_invocation),
            ])
            .unwrap(),
        );
        rt.submit(WorkUnit::Call(call));
    }
    let outcomes = rt.run_until_idle().expect("inference runs");
    let mut class_counts = std::collections::BTreeMap::new();
    for o in &outcomes {
        let Value::List(classes) = decode_result(o).expect("classes") else {
            panic!("expected list")
        };
        for cls in classes.borrow().iter() {
            *class_counts.entry(cls.as_int().unwrap()).or_insert(0u64) += 1;
        }
    }
    let total: u64 = class_counts.values().sum();
    println!(
        "  classified {total} images across {} distinct classes on {} invocations",
        class_counts.len(),
        outcomes.len()
    );
    rt.shutdown();
}

fn simulated_cluster(scale: f64) {
    println!("\n== simulated: LNNI at paper scale × {scale} (Fig 6a) ==");
    let invocations = ((100_000.0 * scale) as u64).max(100);
    let mut results = Vec::new();
    for level in ReuseLevel::ALL {
        let mut workload = LnniWorkload::new(LnniConfig {
            invocations,
            inferences_per_invocation: 16,
            level,
            seed: 0x6c6e6e69,
            library_strategy: LibraryStrategy::PerSlot,
        });
        let r = simulate(SimConfig::paper(level, 150), &mut workload);
        let stats = r.trace.runtime_stats();
        println!(
            "  {level}: {} invocations on 150 workers -> {:7.1} s total, {:5.2} s mean invocation runtime",
            invocations,
            r.makespan.as_secs_f64(),
            stats.mean
        );
        results.push((level, r.makespan.as_secs_f64()));
    }
    let l1 = results[0].1;
    let l3 = results[2].1;
    println!(
        "  L1 -> L3 execution-time reduction: {:.1}% (paper: 94.5% at full scale)",
        (1.0 - l3 / l1) * 100.0
    );
}

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.05);
    live_inference();
    simulated_cluster(scale);
}
