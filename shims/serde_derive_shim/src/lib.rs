//! `#[derive(Serialize, Deserialize)]` for the offline serde shim.
//!
//! syn/quote are unavailable offline, so the input item is parsed directly
//! from the `proc_macro` token stream. Supported shapes are exactly what
//! this workspace derives on: non-generic structs (named, tuple, unit) and
//! enums whose variants are unit, tuple, or struct-like. Generated impls
//! target the shim's `Value` data model and mirror serde's JSON encoding
//! conventions (newtype transparency, unit variants as strings,
//! data-carrying variants as single-entry maps).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Named(Vec<String>),
    /// Tuple fields: only the arity matters.
    Unnamed(usize),
    Unit,
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Skip attributes (`#[...]`), visibility (`pub`, `pub(...)`) and doc
/// comments at the cursor.
fn skip_meta(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#` then bracket group
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return i,
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_meta(&tokens, 0);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected `struct` or `enum`, got {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected item name, got {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive does not support generic types (on `{name}`)");
    }
    match kind.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Unnamed(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!("unsupported struct body for `{name}`: {other:?}"),
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("expected enum body for `{name}`, got {other:?}"),
            };
            Item::Enum {
                name,
                variants: parse_variants(body),
            }
        }
        other => panic!("cannot derive on `{other}`"),
    }
}

/// Parse `attr* vis? name : Type` fields separated by top-level commas.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_meta(&tokens, i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        fields.push(id.to_string());
        i += 1;
        // expect ':' then the type: consume until a comma outside <...>
        let mut angle = 0i32;
        while let Some(t) = tokens.get(i) {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Count tuple-struct fields: top-level commas + 1 (for non-empty bodies).
fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut angle = 0i32;
    let mut count = 1;
    let mut trailing_comma = false;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle += 1;
                trailing_comma = false;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle -= 1;
                trailing_comma = false;
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                count += 1;
                trailing_comma = true;
            }
            _ => trailing_comma = false,
        }
    }
    if trailing_comma {
        count -= 1;
    }
    count
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_meta(&tokens, i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        let name = id.to_string();
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Unnamed(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        variants.push(Variant { name, fields });
        // skip optional discriminant `= expr` and the separating comma
        while let Some(t) = tokens.get(i) {
            if matches!(t, TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
    }
    variants
}

// ---- code generation (emitted as source text, then re-parsed) ----

fn gen_struct_ser(name: &str, fields: &Fields) -> String {
    match fields {
        Fields::Named(names) => {
            let entries: Vec<String> = names
                .iter()
                .map(|f| {
                    format!(
                        "(::serde::Value::Str(\"{f}\".to_string()), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                   fn to_value(&self) -> ::serde::Value {{\n\
                     ::serde::Value::Map(vec![{}])\n\
                   }}\n\
                 }}",
                entries.join(", ")
            )
        }
        Fields::Unnamed(1) => format!(
            "impl ::serde::Serialize for {name} {{\n\
               fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Serialize::to_value(&self.0)\n\
               }}\n\
             }}"
        ),
        Fields::Unnamed(n) => {
            let entries: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                   fn to_value(&self) -> ::serde::Value {{\n\
                     ::serde::Value::Seq(vec![{}])\n\
                   }}\n\
                 }}",
                entries.join(", ")
            )
        }
        Fields::Unit => format!(
            "impl ::serde::Serialize for {name} {{\n\
               fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n\
             }}"
        ),
    }
}

fn gen_struct_de(name: &str, fields: &Fields) -> String {
    let body = match fields {
        Fields::Named(names) => {
            let inits: Vec<String> = names
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(::serde::__field(__v, \"{f}\")?)?"
                    )
                })
                .collect();
            format!("Ok({name} {{ {} }})", inits.join(", "))
        }
        Fields::Unnamed(1) => {
            format!("Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Fields::Unnamed(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(::serde::__elem(__v, {i})?)?"))
                .collect();
            format!("Ok({name}({}))", inits.join(", "))
        }
        Fields::Unit => format!("Ok({name})"),
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
           fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
             {body}\n\
           }}\n\
         }}"
    )
}

fn gen_enum_ser(name: &str, variants: &[Variant]) -> String {
    let arms: Vec<String> = variants
        .iter()
        .map(|v| {
            let vname = &v.name;
            match &v.fields {
                Fields::Unit => {
                    format!("{name}::{vname} => ::serde::Value::Str(\"{vname}\".to_string()),")
                }
                Fields::Unnamed(1) => format!(
                    "{name}::{vname}(__f0) => ::serde::Value::Map(vec![\
                       (::serde::Value::Str(\"{vname}\".to_string()), \
                        ::serde::Serialize::to_value(__f0))]),"
                ),
                Fields::Unnamed(n) => {
                    let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                    let vals: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(__f{i})"))
                        .collect();
                    format!(
                        "{name}::{vname}({}) => ::serde::Value::Map(vec![\
                           (::serde::Value::Str(\"{vname}\".to_string()), \
                            ::serde::Value::Seq(vec![{}]))]),",
                        binds.join(", "),
                        vals.join(", ")
                    )
                }
                Fields::Named(fields) => {
                    let binds = fields.join(", ");
                    let entries: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "(::serde::Value::Str(\"{f}\".to_string()), \
                                 ::serde::Serialize::to_value({f}))"
                            )
                        })
                        .collect();
                    format!(
                        "{name}::{vname} {{ {binds} }} => ::serde::Value::Map(vec![\
                           (::serde::Value::Str(\"{vname}\".to_string()), \
                            ::serde::Value::Map(vec![{}]))]),",
                        entries.join(", ")
                    )
                }
            }
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
           fn to_value(&self) -> ::serde::Value {{\n\
             match self {{\n{}\n}}\n\
           }}\n\
         }}",
        arms.join("\n")
    )
}

fn gen_enum_de(name: &str, variants: &[Variant]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.fields, Fields::Unit))
        .map(|v| format!("\"{0}\" => return Ok({name}::{0}),", v.name))
        .collect();
    let data_arms: Vec<String> = variants
        .iter()
        .filter_map(|v| {
            let vname = &v.name;
            match &v.fields {
                Fields::Unit => None,
                Fields::Unnamed(1) => Some(format!(
                    "\"{vname}\" => return Ok({name}::{vname}(\
                       ::serde::Deserialize::from_value(__payload)?)),"
                )),
                Fields::Unnamed(n) => {
                    let inits: Vec<String> = (0..*n)
                        .map(|i| {
                            format!(
                                "::serde::Deserialize::from_value(::serde::__elem(__payload, {i})?)?"
                            )
                        })
                        .collect();
                    Some(format!(
                        "\"{vname}\" => return Ok({name}::{vname}({})),",
                        inits.join(", ")
                    ))
                }
                Fields::Named(fields) => {
                    let inits: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: ::serde::Deserialize::from_value(\
                                   ::serde::__field(__payload, \"{f}\")?)?"
                            )
                        })
                        .collect();
                    Some(format!(
                        "\"{vname}\" => return Ok({name}::{vname} {{ {} }}),",
                        inits.join(", ")
                    ))
                }
            }
        })
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
           fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
             if let ::serde::Value::Str(__s) = __v {{\n\
               match __s.as_str() {{\n{unit}\n_ => {{}} }}\n\
             }}\n\
             if let ::serde::Value::Map(__m) = __v {{\n\
               if __m.len() == 1 {{\n\
                 if let (::serde::Value::Str(__tag), __payload) = (&__m[0].0, &__m[0].1) {{\n\
                   match __tag.as_str() {{\n{data}\n_ => {{}} }}\n\
                 }}\n\
               }}\n\
             }}\n\
             Err(::serde::DeError(format!(\"no variant of {name} matches {{:?}}\", __v)))\n\
           }}\n\
         }}",
        unit = unit_arms.join("\n"),
        data = data_arms.join("\n"),
    )
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let out = match parse_item(input) {
        Item::Struct { name, fields } => gen_struct_ser(&name, &fields),
        Item::Enum { name, variants } => gen_enum_ser(&name, &variants),
    };
    out.parse().expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let out = match parse_item(input) {
        Item::Struct { name, fields } => gen_struct_de(&name, &fields),
        Item::Enum { name, variants } => gen_enum_de(&name, &variants),
    };
    out.parse().expect("generated Deserialize impl parses")
}
