//! Offline stand-in for the `rayon` crate, covering the subset this
//! workspace uses: `ThreadPoolBuilder::build_global` as a thread-count
//! knob, `current_num_threads`, and `into_par_iter().map(..).collect()`
//! over `Vec`s.
//!
//! Execution model: items are claimed by index from a shared atomic
//! counter by `current_num_threads()` scoped worker threads, and each
//! result is written into its item's own pre-sized slot — so `collect`
//! returns results in input order regardless of which thread finished
//! first or when. With one thread (`--jobs 1` in the repro driver) the map
//! runs inline on the caller's thread with no pool at all, making the
//! sequential path literally the plain-iterator path.
//!
//! Divergences from real rayon, acceptable for this workspace: there is no
//! work-stealing pool (per-call scoped threads instead — the workspace
//! maps over a handful of coarse simulation cells, so spawn cost is
//! noise), and a second `build_global` overwrites the thread count rather
//! than erroring.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// 0 = unset → `available_parallelism`.
static THREADS: AtomicUsize = AtomicUsize::new(0);

/// Threads used by parallel maps: the `build_global` setting, else the
/// machine's available parallelism.
pub fn current_num_threads() -> usize {
    match THREADS.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        n => n,
    }
}

#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "global thread pool configuration failed")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> ThreadPoolBuilder {
        ThreadPoolBuilder::default()
    }

    /// 0 means "use available parallelism", as in real rayon.
    pub fn num_threads(mut self, n: usize) -> ThreadPoolBuilder {
        self.num_threads = n;
        self
    }

    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        THREADS.store(self.num_threads, Ordering::Relaxed);
        Ok(())
    }
}

pub mod prelude {
    pub use crate::{FromParallelVec, IntoParallelIterator, ParallelIterator};
}

/// Order-preserving parallel map: claim items by atomic index, write each
/// result into the slot of the item that produced it.
fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let workers = current_num_threads().min(n);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i].lock().unwrap().take().expect("item claimed once");
                let out = f(item);
                *results[i].lock().unwrap() = Some(out);
            });
        }
    });
    results
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("worker filled every slot"))
        .collect()
}

pub trait IntoParallelIterator {
    type Item: Send;
    type Iter: ParallelIterator<Item = Self::Item>;
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = IntoParIter<T>;
    fn into_par_iter(self) -> IntoParIter<T> {
        IntoParIter { items: self }
    }
}

pub struct IntoParIter<T> {
    items: Vec<T>,
}

pub struct Map<I, F> {
    base: I,
    f: F,
}

pub trait ParallelIterator: Sized {
    type Item: Send;

    /// Materialize the results in input order (the shim's driver; real
    /// rayon has no such method, but nothing here relies on its absence).
    fn to_ordered_vec(self) -> Vec<Self::Item>;

    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync + Send,
    {
        Map { base: self, f }
    }

    fn collect<C: FromParallelVec<Self::Item>>(self) -> C {
        C::from_vec(self.to_ordered_vec())
    }
}

impl<T: Send> ParallelIterator for IntoParIter<T> {
    type Item = T;
    fn to_ordered_vec(self) -> Vec<T> {
        self.items
    }
}

impl<I, R, F> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    R: Send,
    F: Fn(I::Item) -> R + Sync + Send,
{
    type Item = R;
    fn to_ordered_vec(self) -> Vec<R> {
        par_map(self.base.to_ordered_vec(), self.f)
    }
}

/// `collect()` target; only `Vec` is needed here.
pub trait FromParallelVec<T> {
    fn from_vec(v: Vec<T>) -> Self;
}

impl<T> FromParallelVec<T> for Vec<T> {
    fn from_vec(v: Vec<T>) -> Vec<T> {
        v
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_preserves_input_order() {
        let v: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = v.into_par_iter().map(|x| x * 3).collect();
        assert_eq!(out, (0..1000).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn runs_work_from_multiple_threads_when_allowed() {
        // thread-count observation, not a strict guarantee — but with 64
        // slow items and >1 workers, at least two distinct threads claim
        let seen = std::sync::Mutex::new(std::collections::HashSet::new());
        let v: Vec<u32> = (0..64).collect();
        let _: Vec<u32> = v
            .into_par_iter()
            .map(|x| {
                seen.lock().unwrap().insert(std::thread::current().id());
                std::thread::sleep(std::time::Duration::from_millis(1));
                x
            })
            .collect();
        let n = seen.lock().unwrap().len();
        if super::current_num_threads() > 1 {
            assert!(n >= 1, "at least one worker thread ran");
        } else {
            assert_eq!(n, 1, "single-thread mode stays on the caller thread");
        }
    }

    #[test]
    fn every_item_claimed_exactly_once() {
        static CALLS: AtomicUsize = AtomicUsize::new(0);
        let v: Vec<usize> = (0..500).collect();
        let out: Vec<usize> = v
            .into_par_iter()
            .map(|x| {
                CALLS.fetch_add(1, Ordering::Relaxed);
                x
            })
            .collect();
        assert_eq!(out.len(), 500);
        assert_eq!(CALLS.load(Ordering::Relaxed), 500);
    }

    #[test]
    fn empty_and_single_item_inputs() {
        let empty: Vec<u8> = Vec::new();
        let out: Vec<u8> = empty.into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
        let one: Vec<u8> = vec![7];
        let out: Vec<u8> = one.into_par_iter().map(|x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }
}
