//! Offline stand-in for an epoll binding, covering exactly what the
//! vine-runtime reactor needs: an epoll instance (`epoll_create1` /
//! `epoll_ctl` / `epoll_wait`), readiness constants, and an `eventfd`
//! wake handle so other threads can interrupt a blocked `wait`.
//!
//! There is no `libc` crate in this container, so the syscall surface is
//! declared directly as `extern "C"` bindings against the C library the
//! Rust standard library already links on Linux. The surface is five
//! symbols — `epoll_create1`, `epoll_ctl`, `epoll_wait`, `eventfd`, and
//! the `read`/`write`/`close` trio std itself uses — all stable POSIX/
//! Linux ABI for decades.
//!
//! Divergences from real epoll bindings, deliberately accepted: only
//! level-triggered mode is exposed (the reactor re-arms interest
//! explicitly and never uses `EPOLLET`), and the `data` field is always a
//! `u64` token (the reactor indexes a slab with it; nobody stores
//! pointers).

#![cfg(target_os = "linux")]

use std::io;
use std::os::unix::io::{AsRawFd, RawFd};

// ---------------------------------------------------------------- syscalls

#[allow(non_camel_case_types)]
type c_int = i32;
#[allow(non_camel_case_types)]
type c_uint = u32;

/// The kernel's epoll_event. On x86-64 the glibc/kernel ABI packs this
/// struct (a 32-bit event mask immediately followed by the 64-bit user
/// datum, 12 bytes total); other architectures use natural alignment.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
struct epoll_event {
    events: u32,
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut epoll_event) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut epoll_event, maxevents: c_int, timeout: c_int)
        -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut u8, count: usize) -> isize;
    fn write(fd: c_int, buf: *const u8, count: usize) -> isize;
    fn close(fd: c_int) -> c_int;
}

const EPOLL_CLOEXEC: c_int = 0o2000000;
const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;
const EFD_CLOEXEC: c_int = 0o2000000;
const EFD_NONBLOCK: c_int = 0o4000;

// ------------------------------------------------------- readiness flags

/// The socket is readable (or a peer closed: EOF reads as readable).
pub const EPOLLIN: u32 = 0x001;
/// The socket has write space again.
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (delivered regardless of requested interest).
pub const EPOLLERR: u32 = 0x008;
/// Hangup (delivered regardless of requested interest).
pub const EPOLLHUP: u32 = 0x010;
/// Peer shut down its writing half.
pub const EPOLLRDHUP: u32 = 0x2000;

fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

// ------------------------------------------------------------------ epoll

/// One readiness notification out of [`Epoll::wait`].
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// Bitwise OR of `EPOLL*` readiness flags.
    pub readiness: u32,
    /// The token registered with the fd.
    pub token: u64,
}

/// An epoll instance. Registration is keyed by fd; each fd carries a
/// caller-chosen `u64` token that comes back in its events.
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    pub fn new() -> io::Result<Epoll> {
        let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: c_int, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        let mut ev = epoll_event {
            events: interest,
            data: token,
        };
        cvt(unsafe { epoll_ctl(self.fd, op, fd, &mut ev) }).map(|_| ())
    }

    /// Start watching `fd` for `interest` (level-triggered).
    pub fn add(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, interest, token)
    }

    /// Change the interest set (and/or token) of a watched fd.
    pub fn modify(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, interest, token)
    }

    /// Stop watching `fd`. Closing an fd deregisters it implicitly, but an
    /// explicit delete keeps the interest list in sync with the slab.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        // the event argument must be non-null on pre-2.6.9 kernels; pass
        // a dummy unconditionally, it is ignored on delete
        let mut ev = epoll_event { events: 0, data: 0 };
        cvt(unsafe { epoll_ctl(self.fd, EPOLL_CTL_DEL, fd, &mut ev) }).map(|_| ())
    }

    /// Block until at least one watched fd is ready or `timeout_ms`
    /// elapses (`None` blocks indefinitely). Appends up to `max` events
    /// into `out` (cleared first) and returns how many arrived; zero
    /// means the timeout fired.
    pub fn wait(
        &self,
        out: &mut Vec<Event>,
        max: usize,
        timeout_ms: Option<u32>,
    ) -> io::Result<usize> {
        out.clear();
        let max = max.clamp(1, 1024);
        let mut raw: Vec<epoll_event> = vec![epoll_event { events: 0, data: 0 }; max];
        let timeout = match timeout_ms {
            None => -1,
            Some(ms) => ms.min(i32::MAX as u32) as c_int,
        };
        let n = loop {
            match cvt(unsafe { epoll_wait(self.fd, raw.as_mut_ptr(), max as c_int, timeout) }) {
                Ok(n) => break n as usize,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        };
        for ev in &raw[..n] {
            out.push(Event {
                readiness: ev.events,
                // a packed field cannot be borrowed; copy it out
                token: { ev.data },
            });
        }
        Ok(n)
    }
}

impl AsRawFd for Epoll {
    fn as_raw_fd(&self) -> RawFd {
        self.fd
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        unsafe { close(self.fd) };
    }
}

// Registration and waiting are plain syscalls on an owned fd.
unsafe impl Send for Epoll {}
unsafe impl Sync for Epoll {}

// ----------------------------------------------------------------- waker

/// An `eventfd`-backed wake handle: any thread may call [`WakeFd::wake`]
/// to make the fd readable, interrupting an [`Epoll::wait`] that watches
/// it. The reactor drains it with [`WakeFd::drain`] and goes back to
/// sleep.
pub struct WakeFd {
    fd: RawFd,
}

impl WakeFd {
    pub fn new() -> io::Result<WakeFd> {
        let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
        Ok(WakeFd { fd })
    }

    /// Make the fd readable. Async-signal-safe, never blocks: eventfd
    /// writes only fail when the counter would overflow, which just means
    /// a wake is already pending.
    pub fn wake(&self) {
        let one: u64 = 1;
        unsafe { write(self.fd, one.to_ne_bytes().as_ptr(), 8) };
    }

    /// Consume all pending wakes.
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        unsafe { read(self.fd, buf.as_mut_ptr(), 8) };
    }
}

impl AsRawFd for WakeFd {
    fn as_raw_fd(&self) -> RawFd {
        self.fd
    }
}

impl Drop for WakeFd {
    fn drop(&mut self) {
        unsafe { close(self.fd) };
    }
}

unsafe impl Send for WakeFd {}
unsafe impl Sync for WakeFd {}

// ------------------------------------------------------------------ tests

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::time::{Duration, Instant};

    #[test]
    fn waits_time_out_with_no_events() {
        let ep = Epoll::new().unwrap();
        let mut events = Vec::new();
        let started = Instant::now();
        let n = ep.wait(&mut events, 16, Some(30)).unwrap();
        assert_eq!(n, 0);
        assert!(started.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn socket_readability_is_reported_with_its_token() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let ep = Epoll::new().unwrap();
        ep.add(server.as_raw_fd(), EPOLLIN, 42).unwrap();

        let mut events = Vec::new();
        // nothing to read yet
        assert_eq!(ep.wait(&mut events, 16, Some(20)).unwrap(), 0);

        client.write_all(b"ping").unwrap();
        assert_eq!(ep.wait(&mut events, 16, Some(2000)).unwrap(), 1);
        assert_eq!(events[0].token, 42);
        assert!(events[0].readiness & EPOLLIN != 0);

        // level-triggered: still readable until drained
        assert_eq!(ep.wait(&mut events, 16, Some(2000)).unwrap(), 1);
        let mut srv = &server;
        let mut buf = [0u8; 8];
        let n = srv.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"ping");
        assert_eq!(ep.wait(&mut events, 16, Some(20)).unwrap(), 0);
    }

    #[test]
    fn modify_switches_interest_and_delete_removes_it() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();

        let ep = Epoll::new().unwrap();
        // a fresh socket has write space: EPOLLOUT fires immediately
        ep.add(server.as_raw_fd(), EPOLLOUT, 7).unwrap();
        let mut events = Vec::new();
        assert_eq!(ep.wait(&mut events, 16, Some(2000)).unwrap(), 1);
        assert!(events[0].readiness & EPOLLOUT != 0);

        // switch to read interest only: quiescent until the peer writes
        ep.modify(server.as_raw_fd(), EPOLLIN, 7).unwrap();
        assert_eq!(ep.wait(&mut events, 16, Some(20)).unwrap(), 0);
        client.write_all(b"x").unwrap();
        assert_eq!(ep.wait(&mut events, 16, Some(2000)).unwrap(), 1);

        ep.delete(server.as_raw_fd()).unwrap();
        assert_eq!(ep.wait(&mut events, 16, Some(20)).unwrap(), 0);
    }

    #[test]
    fn wake_fd_interrupts_a_blocked_wait() {
        let ep = Epoll::new().unwrap();
        let wake = std::sync::Arc::new(WakeFd::new().unwrap());
        ep.add(wake.as_raw_fd(), EPOLLIN, 1).unwrap();

        let w = std::sync::Arc::clone(&wake);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            w.wake();
            w.wake(); // coalesces with the first
        });

        let mut events = Vec::new();
        let n = ep.wait(&mut events, 16, Some(5000)).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token, 1);
        wake.drain();
        // drained: quiescent again
        assert_eq!(ep.wait(&mut events, 16, Some(20)).unwrap(), 0);
        t.join().unwrap();
    }
}
