//! Offline stand-in for `proptest`: generation-only property testing with
//! the same surface this workspace uses (`proptest!`, `prop_oneof!`,
//! `prop_assert*!`, `Strategy` combinators, `prop::collection`,
//! `prop::num::f64`, `prop::option`, regex-subset string strategies).
//!
//! Differences from the real crate, deliberately accepted:
//! * **No shrinking.** A failing case reports its inputs (via the panic
//!   message and deterministic case index) but is not minimized.
//! * **Deterministic seeding.** Streams derive from the test's file/line,
//!   so every run explores the same cases — there is no OS entropy in this
//!   container anyway, and reproducibility is what the differential tests
//!   need.
//! * String strategies accept the regex subset `[class]{m,n}` / literals /
//!   `? * +` only, which covers every pattern in this repository.

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// The RNG handed to strategies. Concrete so `Strategy` stays dyn-safe.
pub struct TestRng {
    inner: ChaCha8Rng,
}

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        TestRng {
            inner: ChaCha8Rng::seed_from_u64(seed),
        }
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
}

pub mod strategy {
    use super::*;

    /// A source of values of one type. Generation-only: `gen_value` draws a
    /// fresh sample; there is no shrink tree.
    pub trait Strategy {
        type Value;

        fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_filter<R, F>(self, reason: R, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            R: Into<String>,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                reason: reason.into(),
                pred,
            }
        }

        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Bounded recursion: after `depth` expansions the strategy bottoms
        /// out at the original leaves. `desired_size` and `expected_branch`
        /// are accepted for signature parity but the depth bound alone
        /// controls generation here.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let leaf = self.boxed();
            let mut strat = leaf.clone();
            for _ in 0..depth {
                // lean toward leaves so sizes stay moderate
                strat =
                    Union::weighted(vec![(2, leaf.clone()), (1, recurse(strat).boxed())]).boxed();
            }
            strat
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// Type-erased, cheaply clonable strategy (the handle `prop_recursive`
    /// passes to its closure).
    pub struct BoxedStrategy<T>(pub(crate) Rc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            self.0.gen_value(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn gen_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn gen_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.gen_value(rng))
        }
    }

    pub struct Filter<S, F> {
        inner: S,
        reason: String,
        pred: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn gen_value(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1_000 {
                let v = self.inner.gen_value(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!("prop_filter exhausted 1000 attempts: {}", self.reason);
        }
    }

    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn gen_value(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.gen_value(rng)).gen_value(rng)
        }
    }

    /// Weighted choice among same-valued strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u32,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            Union::weighted(arms.into_iter().map(|s| (1, s)).collect())
        }

        pub fn weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            let total = arms.iter().map(|(w, _)| *w).sum();
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.gen_range(0u32..self.total);
            for (w, arm) in &self.arms {
                if pick < *w {
                    return arm.gen_value(rng);
                }
                pick -= w;
            }
            unreachable!("weighted pick out of range")
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn gen_value(&self, rng: &mut TestRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.gen_value(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    }

    /// Regex-subset string strategy: a `&'static str` pattern made of
    /// literal chars, `[...]` classes (with ranges and `\`-escapes), and
    /// `{m}` / `{m,n}` / `?` / `*` / `+` repetition.
    impl Strategy for &'static str {
        type Value = String;
        fn gen_value(&self, rng: &mut TestRng) -> String {
            let pieces = super::pattern::parse(self);
            super::pattern::generate(&pieces, rng)
        }
    }
}

mod pattern {
    use super::{Rng, TestRng};

    pub struct Piece {
        /// Inclusive char ranges the piece may draw from.
        pub options: Vec<(char, char)>,
        pub min: usize,
        pub max: usize,
    }

    pub fn parse(pattern: &str) -> Vec<Piece> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut pieces = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let options = match chars[i] {
                '[' => {
                    i += 1;
                    let mut opts = Vec::new();
                    while i < chars.len() && chars[i] != ']' {
                        let lo = if chars[i] == '\\' {
                            i += 1;
                            chars[i]
                        } else {
                            chars[i]
                        };
                        // range like a-z (a trailing '-' is a literal)
                        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                            let hi = if chars[i + 2] == '\\' {
                                i += 1;
                                chars[i + 2]
                            } else {
                                chars[i + 2]
                            };
                            opts.push((lo, hi));
                            i += 3;
                        } else {
                            opts.push((lo, lo));
                            i += 1;
                        }
                    }
                    assert!(i < chars.len(), "unterminated [class] in pattern {pattern}");
                    i += 1; // past ']'
                    opts
                }
                '\\' => {
                    i += 1;
                    let c = chars[i];
                    i += 1;
                    vec![(c, c)]
                }
                c => {
                    i += 1;
                    vec![(c, c)]
                }
            };
            // repetition suffix
            let (min, max) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .expect("unterminated {rep}")
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse().expect("bad {m,n}"),
                        n.trim().parse().expect("bad {m,n}"),
                    ),
                    None => {
                        let k = body.trim().parse().expect("bad {m}");
                        (k, k)
                    }
                }
            } else if i < chars.len() && (chars[i] == '?' || chars[i] == '*' || chars[i] == '+') {
                let suffix = chars[i];
                i += 1;
                match suffix {
                    '?' => (0, 1),
                    '*' => (0, 8),
                    _ => (1, 8),
                }
            } else {
                (1, 1)
            };
            pieces.push(Piece { options, min, max });
        }
        pieces
    }

    pub fn generate(pieces: &[Piece], rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in pieces {
            let count = rng.gen_range(piece.min..=piece.max);
            let weight: u64 = piece
                .options
                .iter()
                .map(|(lo, hi)| (*hi as u64) - (*lo as u64) + 1)
                .sum();
            for _ in 0..count {
                let mut pick = rng.gen_range(0..weight);
                for (lo, hi) in &piece.options {
                    let span = (*hi as u64) - (*lo as u64) + 1;
                    if pick < span {
                        out.push(char::from_u32(*lo as u32 + pick as u32).expect("char range"));
                        break;
                    }
                    pick -= span;
                }
            }
        }
        out
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::{Rng, RngCore, TestRng};
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for u128 {
        fn arbitrary_value(rng: &mut TestRng) -> u128 {
            ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
        }
    }

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        /// Finite floats across many magnitudes (uniform bit patterns are
        /// almost all astronomically large; this matches proptest's spirit
        /// of exercising varied exponents).
        fn arbitrary_value(rng: &mut TestRng) -> f64 {
            let mantissa: f64 = 1.0 + rng.gen::<f64>();
            let exp = rng.gen_range(-200i32..200);
            let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
            sign * mantissa * (exp as f64).exp2()
        }
    }

    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::{Rng, TestRng};
    use std::collections::BTreeMap;
    use std::ops::Range;

    /// Collection size specification: a half-open range or an exact count.
    #[derive(Clone)]
    pub struct SizeRange(Range<usize>);

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange(r)
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange(n..n + 1)
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.0.clone());
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }

    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V> {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
            let target = rng.gen_range(self.size.0.clone());
            let mut map = BTreeMap::new();
            // duplicate keys shrink the result, like the real crate's
            // size range being a maximum under collisions
            for _ in 0..target {
                map.insert(self.key.gen_value(rng), self.value.gen_value(rng));
            }
            map
        }
    }
}

pub mod num {
    pub mod f64 {
        use crate::strategy::Strategy;
        use crate::{Rng, RngCore, TestRng};

        #[derive(Clone, Copy)]
        pub struct FloatStrategy {
            positive_only: bool,
        }

        /// Finite, normal (non-sub-normal, non-NaN) floats of either sign.
        pub const NORMAL: FloatStrategy = FloatStrategy {
            positive_only: false,
        };

        /// Strictly positive finite floats.
        pub const POSITIVE: FloatStrategy = FloatStrategy {
            positive_only: true,
        };

        impl Strategy for FloatStrategy {
            type Value = f64;
            fn gen_value(&self, rng: &mut TestRng) -> f64 {
                let mantissa: f64 = 1.0 + rng.gen::<f64>(); // [1, 2)
                let exp = rng.gen_range(-300i32..300);
                let magnitude = mantissa * (exp as f64).exp2();
                if !self.positive_only && rng.next_u64() & 1 == 1 {
                    -magnitude
                } else {
                    magnitude
                }
            }
        }
    }
}

pub mod option {
    use super::strategy::{BoxedStrategy, Strategy};
    use super::{RngCore, TestRng};

    pub struct OptionStrategy<T>(BoxedStrategy<T>);

    pub fn of<S: Strategy + 'static>(inner: S) -> OptionStrategy<S::Value> {
        OptionStrategy(inner.boxed())
    }

    impl<T> Strategy for OptionStrategy<T> {
        type Value = Option<T>;
        fn gen_value(&self, rng: &mut TestRng) -> Option<T> {
            // bias toward Some, like the real crate's default
            if rng.next_u64().is_multiple_of(4) {
                None
            } else {
                Some(self.0.gen_value(rng))
            }
        }
    }
}

pub mod test_runner {
    use super::TestRng;

    /// A property rejected by a `prop_assert*!` macro.
    #[derive(Debug)]
    pub struct TestCaseError {
        pub message: String,
    }

    impl TestCaseError {
        pub fn fail<S: Into<String>>(message: S) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    fn fnv(bytes: &[u8]) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Run `cases` deterministic cases. The seed derives from the test's
    /// source location so each property explores its own stream and the
    /// same stream every run (reproducible by construction — report the
    /// case index on failure and it can be re-run directly).
    pub fn run<F>(config: ProptestConfig, file: &str, line: u32, name: &str, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let base = fnv(file.as_bytes()) ^ (line as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        for i in 0..config.cases {
            let mut rng = TestRng::from_seed(base ^ ((i as u64) << 32 | 0x7072_6f70));
            if let Err(e) = case(&mut rng) {
                panic!(
                    "proptest property `{name}` failed at case {i}/{} ({file}:{line}): {}",
                    config.cases, e.message
                );
            }
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Mirror of the real prelude's `prop` module alias.
    pub mod prop {
        pub use crate::collection;
        pub use crate::num;
        pub use crate::option;
    }
}

/// Define property tests: each `fn name(bindings in strategies) { body }`
/// becomes a `#[test]` running `cases` deterministic samples.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __strategies = ($($strat,)+);
                $crate::test_runner::run(
                    $config,
                    file!(),
                    line!(),
                    stringify!($name),
                    |__rng| {
                        let ($($pat,)+) =
                            $crate::strategy::Strategy::gen_value(&__strategies, __rng);
                        $body
                        Ok(())
                    },
                );
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($pat in $strat),+) $body
            )*
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            __l,
            __r
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `left != right`\n  both: `{:?}`",
            __l
        );
    }};
}

/// Uniform (or the real crate's weighted — weights unsupported here)
/// choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn pattern_strategy_matches_shape() {
        let mut rng = crate::TestRng::from_seed(11);
        for _ in 0..200 {
            let s = Strategy::gen_value(&"[a-z_][a-z0-9_]{0,8}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 9, "{s:?}");
            let mut cs = s.chars();
            let first = cs.next().unwrap();
            assert!(first.is_ascii_lowercase() || first == '_', "{s:?}");
            assert!(
                cs.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
                "{s:?}"
            );
        }
    }

    #[test]
    fn escaped_class_members_appear() {
        let mut rng = crate::TestRng::from_seed(3);
        let mut saw_dash = false;
        let mut saw_dot = false;
        for _ in 0..500 {
            let s = Strategy::gen_value(&"[a\\-\\.]{1,4}", &mut rng);
            saw_dash |= s.contains('-');
            saw_dot |= s.contains('.');
            assert!(s.chars().all(|c| c == 'a' || c == '-' || c == '.'), "{s:?}");
        }
        assert!(saw_dash && saw_dot);
    }

    #[test]
    fn recursive_strategy_terminates() {
        #[derive(Debug)]
        enum Tree {
            #[allow(dead_code)] // constructed by the strategy, read via Debug
            Leaf(i64),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(children) => 1 + children.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = (0i64..100)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 32, 4, |inner| {
                prop::collection::vec(inner, 0..4).prop_map(Tree::Node)
            });
        let mut rng = crate::TestRng::from_seed(7);
        for _ in 0..200 {
            let t = strat.gen_value(&mut rng);
            assert!(depth(&t) <= 3, "{t:?}");
        }
    }

    #[test]
    fn float_strategies_respect_class() {
        let mut rng = crate::TestRng::from_seed(9);
        for _ in 0..500 {
            let x = prop::num::f64::NORMAL.gen_value(&mut rng);
            assert!(x.is_finite() && x.is_normal(), "{x}");
            let p = prop::num::f64::POSITIVE.gen_value(&mut rng);
            assert!(p > 0.0 && p.is_finite(), "{p}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_binds_multiple_vars(a in 0i64..100, b in -50i64..50) {
            prop_assert!(a >= 0);
            prop_assert!((-50..50).contains(&b));
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn tuple_and_filter_compose(
            (x, y) in (0u32..10, 0u32..10).prop_filter("distinct", |(x, y)| x != y),
        ) {
            prop_assert_ne!(x, y);
        }
    }
}
