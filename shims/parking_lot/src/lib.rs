//! Offline stand-in for `parking_lot`: thin wrappers over `std::sync`
//! primitives exposing the poison-free API (`lock()` returning a guard
//! directly). Performance characteristics differ from the real crate but
//! the semantics this workspace relies on are identical.

use std::sync;
pub use sync::{MutexGuard as StdMutexGuard, RwLockReadGuard, RwLockWriteGuard};

#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    pub fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }
}
