//! ChaCha8-based deterministic RNG for the offline rand shim.
//!
//! This is a faithful ChaCha block function (8 rounds) over a key derived
//! from the `u64` seed with splitmix64, so streams are stable across
//! platforms and releases. It does not aim for bit-compatibility with
//! crates.io `rand_chacha` — the simulator defines its own baselines — only
//! for high-quality deterministic streams.

use rand::{RngCore, SeedableRng};

/// ChaCha with 8 rounds, 64-bit seeded.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buf: [u32; 16],
    /// Next unread word in `buf`; 16 means exhausted.
    idx: usize,
}

const CHACHA_CONST: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONST);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let input = state;
        for _ in 0..4 {
            // two rounds per iteration: column then diagonal
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for i in 0..16 {
            self.buf[i] = state[i].wrapping_add(input[i]);
        }
        self.counter = self.counter.wrapping_add(1);
        self.idx = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut s = seed;
        let mut key = [0u32; 8];
        for pair in key.chunks_mut(2) {
            let word = splitmix64(&mut s);
            pair[0] = word as u32;
            if pair.len() > 1 {
                pair[1] = (word >> 32) as u32;
            }
        }
        ChaCha8Rng {
            key,
            counter: 0,
            buf: [0; 16],
            idx: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        if self.idx + 2 > 16 {
            self.refill();
        }
        let lo = self.buf[self.idx] as u64;
        let hi = self.buf[self.idx + 1] as u64;
        self.idx += 2;
        (hi << 32) | lo
    }

    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(1);
        let mut c = ChaCha8Rng::seed_from_u64(2);
        let va: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn output_is_well_distributed() {
        let mut rng = ChaCha8Rng::seed_from_u64(0x76696e65);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        let ones: u32 = (0..64).map(|_| rng.next_u64().count_ones()).sum();
        let expected = 64 * 32;
        assert!(
            (i64::from(ones) - i64::from(expected)).abs() < 300,
            "bit bias: {ones}"
        );
    }

    #[test]
    fn mixed_width_reads_advance_consistently() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        let mut b = ChaCha8Rng::seed_from_u64(5);
        let _ = a.next_u32();
        let _ = a.next_u64();
        let _ = b.next_u32();
        let _ = b.next_u64();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
