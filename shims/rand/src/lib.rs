//! Offline stand-in for the `rand` crate (0.8-era API subset).
//!
//! Deterministic by construction: every generator is seeded explicitly
//! (`seed_from_u64`) and there is no OS entropy source. The distributions
//! are simpler than the real crate's (e.g. `gen_range` uses multiply-shift
//! rejection-free sampling), which is fine here because the simulator only
//! requires determinism and reasonable uniformity, not bit-compatibility
//! with crates.io `rand`.

use std::ops::Range;

/// Core 64-bit generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction. The real trait is keyed on an associated seed
/// array; the workspace only ever calls `seed_from_u64`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values samplable uniformly from the generator's raw stream.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for f64 {
    /// Uniform in [0, 1) with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange {
    type Output;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let unit = f64::sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let x = ((rng.next_u64() as u128) * span) >> 64;
                (self.start as i128 + x as i128) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let x = ((rng.next_u64() as u128) * span) >> 64;
                (start as i128 + x as i128) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The convenience extension every call site uses.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    use super::RngCore;

    /// Slice shuffling (Fisher–Yates).
    pub trait SliceRandom {
        type Item;
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                // multiply-shift keeps this unbiased enough for simulation
                let j = (((rng.next_u64() as u128) * (i as u128 + 1)) >> 64) as usize;
                self.swap(i, j);
            }
        }

        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                return None;
            }
            let i = (((rng.next_u64() as u128) * (self.len() as u128)) >> 64) as usize;
            self.get(i)
        }
    }
}

pub mod rngs {
    //! Placeholder module for API parity; the workspace seeds explicitly.
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            // weak generator, fine for API tests
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn unit_float_in_range() {
        let mut rng = Counter(42);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let x = rng.gen_range(-0.05..0.05);
            assert!((-0.05..0.05).contains(&x));
            let n = rng.gen_range(3u64..17);
            assert!((3..17).contains(&n));
            let m = rng.gen_range(0usize..=4);
            assert!(m <= 4);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Counter(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }
}
