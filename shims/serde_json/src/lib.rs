//! Offline stand-in for `serde_json` over the serde shim's `Value` model.
//!
//! Output conventions follow the real crate where the workspace can
//! observe them: compact form uses `":"` and `","` with no spaces, pretty
//! form indents two spaces and separates keys with `": "`, and whole
//! floats print with a trailing `.0`.

use serde::{Deserialize, Serialize, Value};
use std::fmt;

#[derive(Debug)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;

pub fn to_string<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0)?;
    Ok(out)
}

pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse(s)?;
    T::from_value(&value).map_err(|e| Error(e.0))
}

// ---- writer ----

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) -> Result<()> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::U128(n) => out.push_str(&n.to_string()),
        Value::F64(x) => out.push_str(&format_f64(*x)),
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_key(out, k)?;
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
    Ok(())
}

/// JSON object keys must be strings; scalar keys are stringified like the
/// real serde_json does for integer map keys.
fn write_key(out: &mut String, k: &Value) -> Result<()> {
    match k {
        Value::Str(s) => write_string(out, s),
        Value::I64(n) => write_string(out, &n.to_string()),
        Value::U64(n) => write_string(out, &n.to_string()),
        Value::U128(n) => write_string(out, &n.to_string()),
        Value::Bool(b) => write_string(out, &b.to_string()),
        other => return Err(Error(format!("map key must be scalar, got {other:?}"))),
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

fn format_f64(x: f64) -> String {
    if !x.is_finite() {
        // serde_json rejects non-finite floats; rendering null keeps the
        // output loadable instead of failing an entire experiment dump
        return "null".to_string();
    }
    if x == x.trunc() && x.abs() < 1e16 {
        format!("{x:.1}")
    } else {
        format!("{x}")
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ----

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

pub fn parse(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing input at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.keyword("null", Value::Null),
            Some(b't') => self.keyword("true", Value::Bool(true)),
            Some(b'f') => self.keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.seq(),
            Some(b'{') => self.map(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(Error(format!("unexpected {other:?} at byte {}", self.pos))),
        }
    }

    fn keyword(&mut self, word: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error(format!("bad keyword at byte {}", self.pos)))
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("short \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            // surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(Error(format!("bad escape {other:?}"))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // bulk-copy the run up to the next quote or escape; both
                    // delimiters are ASCII, so the boundary cannot split a
                    // UTF-8 scalar and the run validates as a unit
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| Error("invalid utf-8".into()))?;
                    out.push_str(run);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error(format!("bad float {text:?}")))
        } else if let Ok(n) = text.parse::<i64>() {
            Ok(Value::I64(n))
        } else if let Ok(n) = text.parse::<u64>() {
            Ok(Value::U64(n))
        } else if let Ok(n) = text.parse::<u128>() {
            Ok(Value::U128(n))
        } else {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error(format!("bad number {text:?}")))
        }
    }

    fn seq(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                other => return Err(Error(format!("bad sequence at {other:?}"))),
            }
        }
    }

    fn map(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((Value::Str(key), val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                other => return Err(Error(format!("bad map at {other:?}"))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_forms() {
        let v = Value::Map(vec![
            (Value::Str("id".into()), Value::Str("t1".into())),
            (Value::Str("n".into()), Value::I64(3)),
        ]);
        let mut compact = String::new();
        write_value(&mut compact, &v, None, 0).unwrap();
        assert_eq!(compact, r#"{"id":"t1","n":3}"#);
        let mut pretty = String::new();
        write_value(&mut pretty, &v, Some(2), 0).unwrap();
        assert!(pretty.contains("\"id\": \"t1\""), "{pretty}");
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        assert_eq!(format_f64(2.0), "2.0");
        assert_eq!(format_f64(2.5), "2.5");
        assert_eq!(format_f64(-0.125), "-0.125");
    }

    #[test]
    fn parse_round_trips() {
        let text = r#"{"a":[1,2.5,"x\né",null,true],"b":{"c":-7}}"#;
        let v = parse(text).unwrap();
        let mut out = String::new();
        write_value(&mut out, &v, None, 0).unwrap();
        assert_eq!(parse(&out).unwrap(), v);
    }

    #[test]
    fn typed_round_trip() {
        let data: Vec<(u64, String)> = vec![(1, "a".into()), (2, "b".into())];
        let s = to_string(&data).unwrap();
        let back: Vec<(u64, String)> = from_str(&s).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn big_u128_survives() {
        let n: u128 = u128::MAX - 3;
        let s = to_string(&n).unwrap();
        let back: u128 = from_str(&s).unwrap();
        assert_eq!(back, n);
    }
}
