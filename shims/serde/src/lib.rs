//! Offline stand-in for `serde`.
//!
//! The real crates.io registry is unavailable in this build environment, so
//! this crate supplies the subset of serde the workspace actually uses: a
//! self-describing [`Value`] data model, [`Serialize`]/[`Deserialize`]
//! traits expressed against it, and `#[derive(Serialize, Deserialize)]`
//! macros (re-exported from `serde_derive_shim`). `serde_json` (also
//! shimmed) renders [`Value`] to and from JSON text.
//!
//! The wire behaviour mirrors serde's JSON conventions: structs are maps,
//! newtype structs are transparent, unit enum variants are strings, and
//! data-carrying variants are single-entry maps keyed by the variant name.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::rc::Rc;
use std::sync::Arc;

pub use serde_derive_shim::{Deserialize, Serialize};

/// The self-describing data model every serializable type lowers to.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    U128(u128),
    F64(f64),
    Str(String),
    Seq(Vec<Value>),
    /// Keys are full values so maps with non-string keys still lower;
    /// JSON rendering stringifies scalar keys and rejects composite ones.
    Map(Vec<(Value, Value)>),
}

impl Value {
    pub fn as_map(&self) -> Option<&[(Value, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Look up a field in a map value by string key.
    pub fn get_field(&self, name: &str) -> Option<&Value> {
        self.as_map()?.iter().find_map(|(k, v)| match k {
            Value::Str(s) if s == name => Some(v),
            _ => None,
        })
    }
}

/// Deserialization error.
#[derive(Clone, Debug, PartialEq)]
pub struct DeError(pub String);

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

impl DeError {
    pub fn custom(msg: impl fmt::Display) -> DeError {
        DeError(msg.to_string())
    }
}

pub trait Serialize {
    fn to_value(&self) -> Value;
}

pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Helper used by derived code: fetch a struct field or error.
pub fn __field<'v>(v: &'v Value, name: &str) -> Result<&'v Value, DeError> {
    v.get_field(name)
        .ok_or_else(|| DeError(format!("missing field `{name}`")))
}

/// Helper used by derived code: fetch a sequence element or error.
pub fn __elem(v: &Value, idx: usize) -> Result<&Value, DeError> {
    v.as_seq()
        .and_then(|s| s.get(idx))
        .ok_or_else(|| DeError(format!("missing tuple element {idx}")))
}

// ---- scalar impls ----

macro_rules! ser_int_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError(format!("{n} out of range"))),
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError(format!("{n} out of range"))),
                    other => Err(DeError(format!("expected integer, got {other:?}"))),
                }
            }
        }
    )*};
}

macro_rules! ser_int_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError(format!("{n} out of range"))),
                    Value::I64(n) => u64::try_from(*n)
                        .ok()
                        .and_then(|n| <$t>::try_from(n).ok())
                        .ok_or_else(|| DeError(format!("{n} out of range"))),
                    Value::U128(n) => <$t>::try_from(u64::try_from(*n).map_err(|_| DeError(format!("{n} out of range")))?)
                        .map_err(|_| DeError(format!("{n} out of range"))),
                    other => Err(DeError(format!("expected integer, got {other:?}"))),
                }
            }
        }
    )*};
}

ser_int_signed!(i8, i16, i32, i64, isize);
ser_int_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for u128 {
    fn to_value(&self) -> Value {
        Value::U128(*self)
    }
}

impl Deserialize for u128 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::U128(n) => Ok(*n),
            Value::U64(n) => Ok(u128::from(*n)),
            Value::I64(n) => u128::try_from(*n).map_err(|_| DeError(format!("{n} out of range"))),
            other => Err(DeError(format!("expected integer, got {other:?}"))),
        }
    }
}

impl Serialize for i128 {
    fn to_value(&self) -> Value {
        // the workspace only serializes non-negative i128s (none today)
        Value::U128(*self as u128)
    }
}

impl Deserialize for i128 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        u128::from_value(v).map(|n| n as i128)
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::I64(n) => Ok(*n as f64),
            Value::U64(n) => Ok(*n as f64),
            // large whole-valued floats print without an exponent and
            // re-parse as integers wider than u64; still floats to us
            Value::U128(n) => Ok(*n as f64),
            other => Err(DeError(format!("expected float, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = String::from_value(v)?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError(format!("expected single char, got {s:?}"))),
        }
    }
}

// ---- references and smart pointers ----

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for Rc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Rc<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Rc::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Arc<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Arc::new)
    }
}

// ---- containers ----

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_seq()
            .ok_or_else(|| DeError(format!("expected sequence, got {v:?}")))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize, E: Serialize> Serialize for Result<T, E> {
    fn to_value(&self) -> Value {
        match self {
            Ok(x) => Value::Map(vec![(Value::Str("Ok".into()), x.to_value())]),
            Err(e) => Value::Map(vec![(Value::Str("Err".into()), e.to_value())]),
        }
    }
}

impl<T: Deserialize, E: Deserialize> Deserialize for Result<T, E> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let m = v
            .as_map()
            .ok_or_else(|| DeError(format!("expected Result map, got {v:?}")))?;
        match m {
            [(Value::Str(tag), payload)] if tag == "Ok" => T::from_value(payload).map(Ok),
            [(Value::Str(tag), payload)] if tag == "Err" => E::from_value(payload).map(Err),
            other => Err(DeError(format!("malformed Result: {other:?}"))),
        }
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_value(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_map()
            .ok_or_else(|| DeError(format!("expected map, got {v:?}")))?
            .iter()
            .map(|(k, val)| Ok((K::from_value(k)?, V::from_value(val)?)))
            .collect()
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_value(), v.to_value()))
                .collect(),
        )
    }
}

macro_rules! tuple_impls {
    ($(($($n:tt $t:ident),+))+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                Ok(($($t::from_value(__elem(v, $n)?)?,)+))
            }
        }
    )+};
}

tuple_impls! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(_: &Value) -> Result<Self, DeError> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(i64::from_value(&42i64.to_value()).unwrap(), 42);
        assert_eq!(u128::from_value(&7u128.to_value()).unwrap(), 7);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hé".to_string().to_value()).unwrap(),
            "hé"
        );
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        let o: Option<String> = Some("x".into());
        assert_eq!(Option::<String>::from_value(&o.to_value()).unwrap(), o);
        let none: Option<String> = None;
        assert_eq!(
            Option::<String>::from_value(&none.to_value()).unwrap(),
            none
        );
        let r: Result<Vec<u8>, String> = Err("boom".into());
        assert_eq!(
            Result::<Vec<u8>, String>::from_value(&r.to_value()).unwrap(),
            r
        );
        let mut m = BTreeMap::new();
        m.insert("k".to_string(), 9u64);
        assert_eq!(
            BTreeMap::<String, u64>::from_value(&m.to_value()).unwrap(),
            m
        );
        let t = (3u64, 1.5f64);
        assert_eq!(<(u64, f64)>::from_value(&t.to_value()).unwrap(), t);
    }

    #[test]
    fn missing_field_errors() {
        let v = Value::Map(vec![(Value::Str("a".into()), Value::I64(1))]);
        assert!(__field(&v, "a").is_ok());
        assert!(__field(&v, "b").is_err());
    }
}
