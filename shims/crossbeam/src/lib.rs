//! Offline stand-in for the `crossbeam` crate, covering the subset this
//! workspace uses: `channel::unbounded`, blocking/timeout/non-blocking
//! receives, and a `select!` macro over `recv(rx) -> pat => body` arms.
//!
//! The channel is a Mutex+Condvar VecDeque with sender-count tracking for
//! disconnect semantics. `select!` readiness-polls the arms in order (fair
//! enough for the runtime's two-arm loops) and runs each handler *outside*
//! the internal wait loop, so `break`/`continue` inside a handler target
//! the caller's enclosing loop exactly as with real crossbeam.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    pub use crate::select;

    struct Inner<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
    }

    /// Receiving half of a channel has been disconnected and drained.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    /// All receivers are gone; the message is returned to the caller.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.senders.fetch_add(1, Ordering::SeqCst);
            Sender {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.inner.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // last sender gone: wake blocked receivers so they observe
                // the disconnect
                self.inner.ready.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            // Receivers existing is implied by Arc count > senders; an
            // unbounded send never blocks, and with the receiver dropped the
            // message would be unobservable — report that case.
            if Arc::strong_count(&self.inner) <= self.inner.senders.load(Ordering::SeqCst) {
                return Err(SendError(value));
            }
            let mut q = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.push_back(value);
            drop(q);
            self.inner.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.inner.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                q = self.inner.ready.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(v) = q.pop_front() {
                return Ok(v);
            }
            if self.inner.senders.load(Ordering::SeqCst) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut q = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.inner.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .inner
                    .ready
                    .wait_timeout(q, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                q = guard;
            }
        }

        /// select! support: is a message available, or is the channel
        /// disconnected (either makes a recv arm runnable)?
        #[doc(hidden)]
        pub fn __select_ready(&self) -> bool {
            let q = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            !q.is_empty() || self.inner.senders.load(Ordering::SeqCst) == 0
        }

        /// select! support: the recv performed once an arm is chosen. Falls
        /// back to blocking if another consumer raced us to the message.
        #[doc(hidden)]
        pub fn __select_recv(&self) -> Result<T, RecvError> {
            match self.try_recv() {
                Ok(v) => Ok(v),
                Err(TryRecvError::Disconnected) => Err(RecvError),
                Err(TryRecvError::Empty) => self.recv(),
            }
        }
    }

    /// Readiness-poll wait used by `select!` between scans. Short sleep
    /// rather than a multi-channel waker: the runtime's select loops are
    /// control-plane, not throughput-critical.
    #[doc(hidden)]
    pub fn __select_park() {
        std::thread::sleep(Duration::from_micros(100));
    }
}

/// Blocking select over `recv` arms, mirroring crossbeam's
/// `select! { recv(rx) -> msg => { .. } .. }` form. Each handler body is
/// expanded in the caller's scope (not inside the wait loop), so
/// `break`/`continue`/`return` behave as they would with the real macro.
#[macro_export]
macro_rules! select {
    ( $( recv($rx:expr) -> $res:pat => $body:block )+ ) => {{
        let __chosen: usize = loop {
            let mut __arm = 0usize;
            let mut __ready: Option<usize> = None;
            $(
                if __ready.is_none() && $rx.__select_ready() {
                    __ready = Some(__arm);
                }
                __arm += 1;
            )+
            let _ = __arm;
            if let Some(i) = __ready {
                break i;
            }
            $crate::channel::__select_park();
        };
        let mut __arm = 0usize;
        $(
            if {
                let __this = __arm;
                __arm += 1;
                __chosen == __this
            } {
                let $res = $rx.__select_recv();
                $body
            } else
        )+
        {
            let _ = __arm;
            unreachable!("select! chose an arm out of range")
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::channel;
    use std::time::Duration;

    #[test]
    fn send_recv_roundtrip() {
        let (tx, rx) = channel::unbounded();
        tx.send(7).unwrap();
        tx.send(8).unwrap();
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.try_recv(), Ok(8));
        assert_eq!(rx.try_recv(), Err(channel::TryRecvError::Empty));
    }

    #[test]
    fn disconnect_is_observable() {
        let (tx, rx) = channel::unbounded::<u32>();
        drop(tx);
        assert_eq!(rx.recv(), Err(channel::RecvError));
        let (tx2, rx2) = channel::unbounded::<u32>();
        tx2.send(1).unwrap();
        drop(tx2);
        // queued message still delivered before disconnect surfaces
        assert_eq!(rx2.recv(), Ok(1));
        assert_eq!(rx2.try_recv(), Err(channel::TryRecvError::Disconnected));
    }

    #[test]
    fn recv_timeout_times_out_and_delivers() {
        let (tx, rx) = channel::unbounded();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(channel::RecvTimeoutError::Timeout)
        );
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            tx.send(42).unwrap();
        });
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(42));
        t.join().unwrap();
    }

    #[test]
    fn cross_thread_delivery() {
        let (tx, rx) = channel::unbounded();
        let producer = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let mut got = Vec::new();
        while let Ok(v) = rx.recv() {
            got.push(v);
        }
        producer.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn select_picks_ready_arm_and_break_targets_caller_loop() {
        let (tx_a, rx_a) = channel::unbounded::<u32>();
        let (tx_b, rx_b) = channel::unbounded::<&'static str>();
        tx_b.send("hello").unwrap();
        let mut seen_num = None;
        let mut seen_str = None;
        let mut rounds = 0;
        loop {
            rounds += 1;
            select! {
                recv(rx_a) -> v => {
                    let Ok(v) = v else { break };
                    seen_num = Some(v);
                    break;
                }
                recv(rx_b) -> s => {
                    let Ok(s) = s else { break };
                    seen_str = Some(s);
                    tx_a.send(9).unwrap();
                }
            }
        }
        assert_eq!(seen_str, Some("hello"));
        assert_eq!(seen_num, Some(9));
        assert_eq!(rounds, 2);
    }

    #[test]
    #[allow(clippy::never_loop)] // the select arms both exit; the loop mirrors real call sites
    fn select_observes_disconnect() {
        let (tx, rx) = channel::unbounded::<u32>();
        let (_tx_keep, rx_other) = channel::unbounded::<u32>();
        drop(tx);
        let mut disconnected = false;
        loop {
            select! {
                recv(rx) -> v => {
                    if v.is_err() {
                        disconnected = true;
                    }
                    break;
                }
                recv(rx_other) -> _v => {
                    unreachable!("no message ever sent here");
                }
            }
        }
        assert!(disconnected);
    }
}
