//! Offline stand-in for `criterion`, keeping the workspace's bench targets
//! compiling and runnable without the crates.io dependency tree.
//!
//! It is a real (if simple) harness: each benchmark is warmed up, then timed
//! over an adaptively-chosen iteration count, and a mean-per-iteration line
//! is printed. No statistical analysis, plots, or baseline comparison — for
//! rigorous numbers use the real criterion crate on a networked machine.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// How long to spend measuring each benchmark after warm-up.
const TARGET_MEASURE: Duration = Duration::from_millis(300);
const TARGET_WARMUP: Duration = Duration::from_millis(100);

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// A formatted benchmark id, e.g. `group/128`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }

    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    /// (total elapsed, iterations) for the measurement phase.
    result: Option<(Duration, u64)>,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // warm-up while estimating per-iteration cost
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < TARGET_WARMUP {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let iters = ((TARGET_MEASURE.as_secs_f64() / per_iter.max(1e-9)) as u64).clamp(1, 1 << 30);
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(routine());
        }
        self.result = Some((start.elapsed(), iters));
    }

    pub fn iter_with_setup<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
    ) {
        // setup time is excluded from the accumulated measurement
        let mut measured = Duration::ZERO;
        let mut iters: u64 = 0;
        // fixed warm-up round
        std::hint::black_box(routine(setup()));
        while measured < TARGET_MEASURE {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            measured += start.elapsed();
            iters += 1;
        }
        self.result = Some((measured, iters));
    }
}

fn report(name: &str, result: Option<(Duration, u64)>, throughput: Option<Throughput>) {
    let Some((elapsed, iters)) = result else {
        println!("{name:<40} (no measurement)");
        return;
    };
    let per_iter = elapsed.as_secs_f64() / iters as f64;
    let time = if per_iter >= 1.0 {
        format!("{per_iter:.3} s")
    } else if per_iter >= 1e-3 {
        format!("{:.3} ms", per_iter * 1e3)
    } else if per_iter >= 1e-6 {
        format!("{:.3} µs", per_iter * 1e6)
    } else {
        format!("{:.1} ns", per_iter * 1e9)
    };
    let rate = match throughput {
        Some(Throughput::Bytes(bytes)) => {
            format!("  {:.1} MiB/s", bytes as f64 / per_iter / (1024.0 * 1024.0))
        }
        Some(Throughput::Elements(n)) => format!("  {:.0} elem/s", n as f64 / per_iter),
        None => String::new(),
    };
    println!("{name:<40} {time}/iter ({iters} iters){rate}");
}

#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { result: None };
        f(&mut b);
        report(name, b.result, None);
        self
    }

    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher { result: None };
        f(&mut b, input);
        report(&id.id, b.result, None);
        self
    }

    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            throughput: None,
        }
    }
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { result: None };
        f(&mut b);
        report(
            &format!("{}/{}", self.name, name),
            b.result,
            self.throughput,
        );
        self
    }

    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher { result: None };
        f(&mut b, input);
        report(
            &format!("{}/{}", self.name, id.id),
            b.result,
            self.throughput,
        );
        self
    }

    pub fn finish(&mut self) {}
}

/// Mirror of criterion's group macro: defines a function running each
/// benchmark in sequence against one `Criterion` instance.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Mirror of criterion's main macro: run every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher { result: None };
        b.iter(|| std::hint::black_box(3u64.wrapping_mul(7)));
        let (elapsed, iters) = b.result.expect("measurement recorded");
        assert!(iters >= 1);
        assert!(elapsed > Duration::ZERO);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Bytes(64));
        group.bench_with_input(BenchmarkId::from_parameter(4), &4u32, |b, n| {
            b.iter(|| std::hint::black_box(*n * 2))
        });
        group.finish();
    }
}
