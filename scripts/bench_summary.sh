#!/usr/bin/env bash
# Merge every BENCH_*.json in the repo root into one benchmark-trajectory
# table: each benchmark's headline metric and speedup on a single line,
# printed to stdout (CI runs this last so the log ends with the full
# performance picture). Unrecognized schemas are listed, not dropped, so
# a new benchmark shows up here the moment its file lands.
#
# Usage: scripts/bench_summary.sh
set -euo pipefail
cd "$(dirname "$0")/.."

python3 - <<'EOF'
import glob, json

rows = []
for path in sorted(glob.glob('BENCH_*.json')):
    try:
        d = json.load(open(path))
    except Exception as e:
        rows.append((path, '(unreadable)', str(e), None, None))
        continue
    name = d.get('benchmark', '?')
    if name == 'sched_hot_path':
        rows.append((path, name, 'decisions/s (indexed vs naive)',
                     d['indexed']['decisions_per_sec'], d.get('speedup')))
    elif name == 'sim_event_core':
        rows.append((path, name, 'events/s (dense vs reference)',
                     d['dense']['events_per_sec'], d.get('speedup')))
    elif name == 'lang_vm_invocation':
        rows.append((path, name, 'invocations/s (vm vs tree, stateless)',
                     d['stateless']['vm']['invocations_per_sec'], d.get('speedup')))
    elif name == 'net_reactor_scaling':
        big = max(d['sizes'], key=lambda s: s['connections'])
        rows.append((path, name, f"msgs/s @ {big['connections']} conns",
                     big['msgs_per_sec'], None))
    elif name == 'shard_throughput':
        big = max(d['sweep'], key=lambda s: s['shards'])
        rows.append((path, name, f"units/s @ {big['shards']} shards (vs 1)",
                     big['throughput_per_sec'], big.get('speedup')))
    else:
        rows.append((path, name, '(unrecognized schema)', None, None))

print(f"{'file':<18} {'benchmark':<22} {'headline':<38} {'value':>12} {'speedup':>8}")
for path, name, head, value, sp in rows:
    v = f"{value:,.1f}" if isinstance(value, (int, float)) else '-'
    s = f"{sp:.2f}x" if isinstance(sp, (int, float)) else '-'
    print(f"{path:<18} {name:<22} {head:<38} {v:>12} {s:>8}")
print()
print('speedup baselines are per-benchmark (see each file); '
      'regenerate with: repro perf [--sim|--lang|--net] / repro shard')
EOF
