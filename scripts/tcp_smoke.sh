#!/usr/bin/env bash
# TCP loopback smoke test: the same small LNNI workload run (a) in one
# process over the in-proc transport and (b) as a manager process plus two
# worker OS processes over framed TCP must produce byte-identical digests.
# A second round kills one worker mid-run and checks the manager observes
# the disconnect, requeues the in-flight invocations onto the survivor,
# and still completes every unit successfully.
#
# Usage: scripts/tcp_smoke.sh [path-to-repro]
set -euo pipefail
cd "$(dirname "$0")/.."

REPRO="${1:-./target/release/repro}"
[ -x "$REPRO" ] || { echo "repro binary not found at $REPRO (build with: cargo build --release)" >&2; exit 2; }

WORKERS=2
N=120
PORT=$((20000 + RANDOM % 20000))
ADDR="127.0.0.1:$PORT"

tmp="$(mktemp -d)"
pids=()
cleanup() {
    for pid in "${pids[@]:-}"; do kill "$pid" 2>/dev/null || true; done
    rm -rf "$tmp"
}
trap cleanup EXIT

wait_for_listen() {
    # the manager prints its bound address to stderr once listening
    for _ in $(seq 1 100); do
        grep -q "listening" "$1" 2>/dev/null && return 0
        sleep 0.1
    done
    echo "manager never started listening" >&2
    return 1
}

# ---- reference: the whole run in one process --------------------------
"$REPRO" serve --local --workers $WORKERS --n $N > "$tmp/local.txt" 2>/dev/null

# ---- round 1: manager + two worker processes over TCP -----------------
"$REPRO" serve --listen "$ADDR" --workers $WORKERS --n $N \
    > "$tmp/tcp.txt" 2> "$tmp/tcp.err" &
manager=$!
pids+=("$manager")
wait_for_listen "$tmp/tcp.err"
"$REPRO" join "$ADDR" & pids+=("$!")
"$REPRO" join "$ADDR" & pids+=("$!")
wait "$manager"

cmp "$tmp/local.txt" "$tmp/tcp.txt" || {
    echo "TCP digest differs from in-process digest" >&2
    diff "$tmp/local.txt" "$tmp/tcp.txt" | head >&2 || true
    exit 1
}
echo "tcp smoke: OK (2-process TCP run byte-identical to in-process run)"

# ---- round 2: kill one worker mid-run, survivor finishes everything ---
PORT=$((PORT + 1))
ADDR="127.0.0.1:$PORT"
"$REPRO" serve --listen "$ADDR" --workers $WORKERS --n $N \
    > "$tmp/kill.txt" 2> "$tmp/kill.err" &
manager=$!
pids+=("$manager")
wait_for_listen "$tmp/kill.err"
"$REPRO" join "$ADDR" & pids+=("$!")
"$REPRO" join "$ADDR" &
victim=$!
pids+=("$victim")
# let the run get going, then kill one worker process outright
sleep 1
kill -9 "$victim" 2>/dev/null || true
wait "$manager"

# the run must still complete every invocation with the same results
cmp "$tmp/local.txt" "$tmp/kill.txt" || {
    echo "post-kill digest differs from in-process digest" >&2
    diff "$tmp/local.txt" "$tmp/kill.txt" | head >&2 || true
    exit 1
}
echo "tcp smoke: OK (worker killed mid-run; in-flight work requeued, results identical)"
