#!/usr/bin/env bash
# Federated-sharding smoke test. Round 1: the same LNNI workload run (a)
# as one manager in one process and (b) as a router plus two shard
# processes over framed TCP must produce byte-identical digests. Round 2
# kills one shard outright (kill -9) while it holds routed-but-unfinished
# work: the router must observe the dead connection, re-route the shard's
# whole in-flight ledger onto the survivor, and still byte-match the
# single-manager digest.
#
# The victim is chosen from the router's own routing breadcrumb
# ("# route: lnni -> sX"): with one library, that shard owns every
# submission. It is SIGSTOPped as soon as it joins, so all its routed
# units are provably still in flight when the kill lands — no timing
# window to race.
#
# Usage: scripts/shard_smoke.sh [path-to-repro]
set -euo pipefail
cd "$(dirname "$0")/.."

REPRO="${1:-./target/release/repro}"
[ -x "$REPRO" ] || { echo "repro binary not found at $REPRO (build with: cargo build --release)" >&2; exit 2; }

N=200
PORT=$((21000 + RANDOM % 20000))
ADDR="127.0.0.1:$PORT"

tmp="$(mktemp -d)"
pids=()
cleanup() {
    for pid in "${pids[@]:-}"; do kill -9 "$pid" 2>/dev/null || true; done
    rm -rf "$tmp"
}
trap cleanup EXIT

wait_for() {
    # poll a log file for a marker line
    for _ in $(seq 1 100); do
        grep -q "$2" "$1" 2>/dev/null && return 0
        sleep 0.1
    done
    echo "timed out waiting for '$2' in $1" >&2
    return 1
}

# ---- reference: the whole run as one manager in one process -----------
"$REPRO" serve --local --workers 2 --n $N > "$tmp/local.txt" 2>/dev/null

# ---- round 1: router + two shard processes over TCP -------------------
"$REPRO" route --listen "$ADDR" --shards 2 --n $N \
    > "$tmp/route.txt" 2> "$tmp/route.err" &
router=$!
pids+=("$router")
wait_for "$tmp/route.err" "listening"
"$REPRO" serve --shard 0 --router "$ADDR" --workers 1 2> "$tmp/s0.err" & pids+=("$!")
"$REPRO" serve --shard 1 --router "$ADDR" --workers 1 2> "$tmp/s1.err" & pids+=("$!")
wait "$router"

cmp "$tmp/local.txt" "$tmp/route.txt" || {
    echo "2-shard digest differs from single-manager digest" >&2
    diff "$tmp/local.txt" "$tmp/route.txt" | head >&2 || true
    exit 1
}
echo "shard smoke: OK (2-shard federated run byte-identical to single-manager run)"

# with one library, one shard owns every submission; it is round 2's victim
victim_sid="$(grep -oE 's[0-9]+$' <(grep '# route: lnni ->' "$tmp/route.err") | tr -d s)"
survivor_sid=$((1 - victim_sid))

# ---- round 2: kill -9 the owning shard; survivor absorbs its ledger ---
PORT=$((PORT + 1))
ADDR="127.0.0.1:$PORT"
"$REPRO" route --listen "$ADDR" --shards 2 --n $N \
    > "$tmp/kill.txt" 2> "$tmp/kill.err" &
router=$!
pids+=("$router")
wait_for "$tmp/kill.err" "listening"
# start the victim first and freeze it the moment it joins: every unit the
# router sends it stays in flight until the kill
"$REPRO" serve --shard "$victim_sid" --router "$ADDR" --workers 1 2> "$tmp/victim.err" &
victim=$!
pids+=("$victim")
disown "$victim" # keep the kill -9 below out of the shell's job chatter
wait_for "$tmp/victim.err" "joined router"
kill -STOP "$victim"
"$REPRO" serve --shard "$survivor_sid" --router "$ADDR" --workers 1 2> "$tmp/survivor.err" &
pids+=("$!")
wait_for "$tmp/kill.err" "routing $N submission"
sleep 0.5
kill -9 "$victim" 2>/dev/null || true
wait "$router"

cmp "$tmp/local.txt" "$tmp/kill.txt" || {
    echo "post-kill digest differs from single-manager digest" >&2
    diff "$tmp/local.txt" "$tmp/kill.txt" | head >&2 || true
    exit 1
}
grep -qE "re-routing [1-9]" "$tmp/kill.err" || {
    echo "router never re-routed the dead shard's in-flight units" >&2
    cat "$tmp/kill.err" >&2
    exit 1
}
echo "shard smoke: OK (shard killed -9 mid-run; in-flight ledger re-routed, results identical)"
