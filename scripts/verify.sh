#!/usr/bin/env bash
# Full verification pass: release build, whole-workspace tests, and
# clippy (warnings denied) on the crates with index/scheduler hot paths.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy -p vine-manager -p vine-sim -- -D warnings
