#!/usr/bin/env bash
# Full verification pass: release build, whole-workspace tests, clippy on
# every target with warnings denied, a formatting check, the static
# pre-flight passes (lint must find no errors in the shipped sources;
# analyze must run clean and its hoisting report is kept as an artifact),
# a determinism smoke run (the repro sweep must be byte-identical with
# and without cross-simulation parallelism), the TCP loopback smoke
# (a multi-process run over framed sockets must byte-match the in-process
# run, with and without a worker killed mid-run), the federated-sharding
# smoke (router + 2 shard processes byte-match the single manager, with
# and without a shard killed -9 mid-run), and the benchmark trajectory
# table merged from every BENCH_*.json.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --check

# VM differential suite: the bytecode VM must stay bit-identical to the
# tree-walking reference (proptest + hazard corpus + golden disassembly)
cargo test -q --release -p vine-lang --test vm_differential --test disasm_golden
./target/release/repro perf --lang
echo "vine-lang VM differential + benchmark: OK (BENCH_lang.json written)"

./target/release/repro lint
./target/release/repro analyze --check | tee ANALYZE_report.txt
echo "repro lint + analyze: OK (report in ANALYZE_report.txt)"

seq_out="$(mktemp)"
par_out="$(mktemp)"
trap 'rm -f "$seq_out" "$par_out"' EXIT
./target/release/repro fig6a fig6b table2 --scale 0.02 --jobs 1 >"$seq_out" 2>/dev/null
./target/release/repro fig6a fig6b table2 --scale 0.02 --jobs 4 >"$par_out" 2>/dev/null
cmp "$seq_out" "$par_out" || {
    echo "repro output differs between --jobs 1 and --jobs 4" >&2
    exit 1
}
echo "repro --jobs determinism: OK (byte-identical at --jobs 1 and 4)"

./scripts/tcp_smoke.sh ./target/release/repro

# reactor connection-scaling smoke: one manager thread must sustain a
# 256-connection loopback fleet (the full 1000-connection run is the
# local `repro perf --net`; CI keeps the bounded variant)
./target/release/repro perf --net --conns 256 --scale 0.1
echo "reactor connection-scaling smoke: OK (BENCH_net.json written)"

# federated sharding: the simulated 1→8 shard sweep (bounded; the
# committed BENCH_shard.json is the full-scale run), then the live
# 2-shard byte-identity + kill -9 smoke
./target/release/repro shard --scale 0.02
echo "federated sharding sweep: OK (BENCH_shard.json written)"
./scripts/shard_smoke.sh ./target/release/repro

# one-page performance picture across every benchmark artifact
./scripts/bench_summary.sh
