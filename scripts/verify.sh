#!/usr/bin/env bash
# Full verification pass: release build, whole-workspace tests, clippy on
# every target with warnings denied, and a formatting check.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --check
