/root/repo/target/debug/libserde_derive_shim.so: /root/repo/shims/serde_derive_shim/src/lib.rs
