/root/repo/target/debug/deps/bench-9b5f916fddab5035.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libbench-9b5f916fddab5035.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libbench-9b5f916fddab5035.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/table.rs:
