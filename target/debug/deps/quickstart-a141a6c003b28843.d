/root/repo/target/debug/deps/quickstart-a141a6c003b28843.d: examples/quickstart.rs

/root/repo/target/debug/deps/quickstart-a141a6c003b28843: examples/quickstart.rs

examples/quickstart.rs:
