/root/repo/target/debug/deps/overhead_modes-f71dd354501cc573.d: crates/bench/benches/overhead_modes.rs Cargo.toml

/root/repo/target/debug/deps/liboverhead_modes-f71dd354501cc573.rmeta: crates/bench/benches/overhead_modes.rs Cargo.toml

crates/bench/benches/overhead_modes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
