/root/repo/target/debug/deps/vine_env-f40834b66afc6b0a.d: crates/vine-env/src/lib.rs crates/vine-env/src/archive.rs crates/vine-env/src/catalog.rs crates/vine-env/src/registry.rs crates/vine-env/src/resolve.rs

/root/repo/target/debug/deps/libvine_env-f40834b66afc6b0a.rlib: crates/vine-env/src/lib.rs crates/vine-env/src/archive.rs crates/vine-env/src/catalog.rs crates/vine-env/src/registry.rs crates/vine-env/src/resolve.rs

/root/repo/target/debug/deps/libvine_env-f40834b66afc6b0a.rmeta: crates/vine-env/src/lib.rs crates/vine-env/src/archive.rs crates/vine-env/src/catalog.rs crates/vine-env/src/registry.rs crates/vine-env/src/resolve.rs

crates/vine-env/src/lib.rs:
crates/vine-env/src/archive.rs:
crates/vine-env/src/catalog.rs:
crates/vine-env/src/registry.rs:
crates/vine-env/src/resolve.rs:
