/root/repo/target/debug/deps/vine_core-357ce8f20c8a0c37.d: crates/vine-core/src/lib.rs crates/vine-core/src/config.rs crates/vine-core/src/context.rs crates/vine-core/src/error.rs crates/vine-core/src/ids.rs crates/vine-core/src/resources.rs crates/vine-core/src/task.rs crates/vine-core/src/time.rs crates/vine-core/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libvine_core-357ce8f20c8a0c37.rmeta: crates/vine-core/src/lib.rs crates/vine-core/src/config.rs crates/vine-core/src/context.rs crates/vine-core/src/error.rs crates/vine-core/src/ids.rs crates/vine-core/src/resources.rs crates/vine-core/src/task.rs crates/vine-core/src/time.rs crates/vine-core/src/trace.rs Cargo.toml

crates/vine-core/src/lib.rs:
crates/vine-core/src/config.rs:
crates/vine-core/src/context.rs:
crates/vine-core/src/error.rs:
crates/vine-core/src/ids.rs:
crates/vine-core/src/resources.rs:
crates/vine-core/src/task.rs:
crates/vine-core/src/time.rs:
crates/vine-core/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
