/root/repo/target/debug/deps/autocontext_live-5ccf75cac4c9fdc0.d: tests/tests/autocontext_live.rs

/root/repo/target/debug/deps/autocontext_live-5ccf75cac4c9fdc0: tests/tests/autocontext_live.rs

tests/tests/autocontext_live.rs:
