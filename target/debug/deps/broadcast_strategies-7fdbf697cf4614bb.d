/root/repo/target/debug/deps/broadcast_strategies-7fdbf697cf4614bb.d: examples/broadcast_strategies.rs

/root/repo/target/debug/deps/broadcast_strategies-7fdbf697cf4614bb: examples/broadcast_strategies.rs

examples/broadcast_strategies.rs:
