/root/repo/target/debug/deps/rand_chacha-76966de8a1d92dbf.d: shims/rand_chacha/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand_chacha-76966de8a1d92dbf.rmeta: shims/rand_chacha/src/lib.rs Cargo.toml

shims/rand_chacha/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
