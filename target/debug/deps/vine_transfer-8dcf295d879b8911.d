/root/repo/target/debug/deps/vine_transfer-8dcf295d879b8911.d: crates/vine-transfer/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libvine_transfer-8dcf295d879b8911.rmeta: crates/vine-transfer/src/lib.rs Cargo.toml

crates/vine-transfer/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
