/root/repo/target/debug/deps/broadcast-3cb6d6f9bf72172d.d: crates/bench/benches/broadcast.rs Cargo.toml

/root/repo/target/debug/deps/libbroadcast-3cb6d6f9bf72172d.rmeta: crates/bench/benches/broadcast.rs Cargo.toml

crates/bench/benches/broadcast.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
