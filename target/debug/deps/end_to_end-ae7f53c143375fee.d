/root/repo/target/debug/deps/end_to_end-ae7f53c143375fee.d: tests/tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-ae7f53c143375fee: tests/tests/end_to_end.rs

tests/tests/end_to_end.rs:
