/root/repo/target/debug/deps/serde_derive_shim-65908d07e1060d70.d: shims/serde_derive_shim/src/lib.rs

/root/repo/target/debug/deps/libserde_derive_shim-65908d07e1060d70.so: shims/serde_derive_shim/src/lib.rs

shims/serde_derive_shim/src/lib.rs:
