/root/repo/target/debug/deps/proptest-b999167bb0d647f3.d: shims/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-b999167bb0d647f3: shims/proptest/src/lib.rs

shims/proptest/src/lib.rs:
