/root/repo/target/debug/deps/proptests-169540d6aa79466a.d: crates/vine-lang/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-169540d6aa79466a.rmeta: crates/vine-lang/tests/proptests.rs Cargo.toml

crates/vine-lang/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
