/root/repo/target/debug/deps/serde_json-557f7739cc0b170e.d: shims/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-557f7739cc0b170e.rlib: shims/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-557f7739cc0b170e.rmeta: shims/serde_json/src/lib.rs

shims/serde_json/src/lib.rs:
