/root/repo/target/debug/deps/vine_sim-9ac73216478a821f.d: crates/vine-sim/src/lib.rs crates/vine-sim/src/cluster.rs crates/vine-sim/src/engine.rs crates/vine-sim/src/reference.rs crates/vine-sim/src/run.rs

/root/repo/target/debug/deps/vine_sim-9ac73216478a821f: crates/vine-sim/src/lib.rs crates/vine-sim/src/cluster.rs crates/vine-sim/src/engine.rs crates/vine-sim/src/reference.rs crates/vine-sim/src/run.rs

crates/vine-sim/src/lib.rs:
crates/vine-sim/src/cluster.rs:
crates/vine-sim/src/engine.rs:
crates/vine-sim/src/reference.rs:
crates/vine-sim/src/run.rs:
