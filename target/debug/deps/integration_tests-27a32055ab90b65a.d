/root/repo/target/debug/deps/integration_tests-27a32055ab90b65a.d: tests/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_tests-27a32055ab90b65a.rmeta: tests/src/lib.rs Cargo.toml

tests/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
