/root/repo/target/debug/deps/vine_data-a842d7cdb08215ab.d: crates/vine-data/src/lib.rs crates/vine-data/src/cache.rs crates/vine-data/src/sharedfs.rs crates/vine-data/src/store.rs

/root/repo/target/debug/deps/vine_data-a842d7cdb08215ab: crates/vine-data/src/lib.rs crates/vine-data/src/cache.rs crates/vine-data/src/sharedfs.rs crates/vine-data/src/store.rs

crates/vine-data/src/lib.rs:
crates/vine-data/src/cache.rs:
crates/vine-data/src/sharedfs.rs:
crates/vine-data/src/store.rs:
