/root/repo/target/debug/deps/quickstart-f6d35f68bb54bbea.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/deps/libquickstart-f6d35f68bb54bbea.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
