/root/repo/target/debug/deps/repro-52af2da01d899f5c.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-52af2da01d899f5c: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
