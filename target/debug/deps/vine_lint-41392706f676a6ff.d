/root/repo/target/debug/deps/vine_lint-41392706f676a6ff.d: crates/vine-lint/src/lib.rs crates/vine-lint/src/dag.rs crates/vine-lint/src/diag.rs crates/vine-lint/src/environment.rs crates/vine-lint/src/language.rs crates/vine-lint/src/placement.rs

/root/repo/target/debug/deps/libvine_lint-41392706f676a6ff.rlib: crates/vine-lint/src/lib.rs crates/vine-lint/src/dag.rs crates/vine-lint/src/diag.rs crates/vine-lint/src/environment.rs crates/vine-lint/src/language.rs crates/vine-lint/src/placement.rs

/root/repo/target/debug/deps/libvine_lint-41392706f676a6ff.rmeta: crates/vine-lint/src/lib.rs crates/vine-lint/src/dag.rs crates/vine-lint/src/diag.rs crates/vine-lint/src/environment.rs crates/vine-lint/src/language.rs crates/vine-lint/src/placement.rs

crates/vine-lint/src/lib.rs:
crates/vine-lint/src/dag.rs:
crates/vine-lint/src/diag.rs:
crates/vine-lint/src/environment.rs:
crates/vine-lint/src/language.rs:
crates/vine-lint/src/placement.rs:
