/root/repo/target/debug/deps/sim_tests-b173b3b2b3b0bc67.d: crates/vine-sim/tests/sim_tests.rs Cargo.toml

/root/repo/target/debug/deps/libsim_tests-b173b3b2b3b0bc67.rmeta: crates/vine-sim/tests/sim_tests.rs Cargo.toml

crates/vine-sim/tests/sim_tests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
