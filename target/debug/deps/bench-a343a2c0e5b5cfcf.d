/root/repo/target/debug/deps/bench-a343a2c0e5b5cfcf.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs Cargo.toml

/root/repo/target/debug/deps/libbench-a343a2c0e5b5cfcf.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
