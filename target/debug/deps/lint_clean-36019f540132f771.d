/root/repo/target/debug/deps/lint_clean-36019f540132f771.d: crates/bench/tests/lint_clean.rs

/root/repo/target/debug/deps/lint_clean-36019f540132f771: crates/bench/tests/lint_clean.rs

crates/bench/tests/lint_clean.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
