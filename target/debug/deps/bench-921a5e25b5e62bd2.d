/root/repo/target/debug/deps/bench-921a5e25b5e62bd2.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/bench-921a5e25b5e62bd2: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/table.rs:
