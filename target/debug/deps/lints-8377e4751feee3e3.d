/root/repo/target/debug/deps/lints-8377e4751feee3e3.d: crates/vine-lint/tests/lints.rs Cargo.toml

/root/repo/target/debug/deps/liblints-8377e4751feee3e3.rmeta: crates/vine-lint/tests/lints.rs Cargo.toml

crates/vine-lint/tests/lints.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
