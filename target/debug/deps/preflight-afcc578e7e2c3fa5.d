/root/repo/target/debug/deps/preflight-afcc578e7e2c3fa5.d: crates/vine-runtime/tests/preflight.rs

/root/repo/target/debug/deps/preflight-afcc578e7e2c3fa5: crates/vine-runtime/tests/preflight.rs

crates/vine-runtime/tests/preflight.rs:
