/root/repo/target/debug/deps/vine_lang-cbc50e69e7df2988.d: crates/vine-lang/src/lib.rs crates/vine-lang/src/ast.rs crates/vine-lang/src/autocontext.rs crates/vine-lang/src/builtins.rs crates/vine-lang/src/inspect.rs crates/vine-lang/src/interp.rs crates/vine-lang/src/lexer.rs crates/vine-lang/src/modules.rs crates/vine-lang/src/parser.rs crates/vine-lang/src/pickle.rs crates/vine-lang/src/value.rs Cargo.toml

/root/repo/target/debug/deps/libvine_lang-cbc50e69e7df2988.rmeta: crates/vine-lang/src/lib.rs crates/vine-lang/src/ast.rs crates/vine-lang/src/autocontext.rs crates/vine-lang/src/builtins.rs crates/vine-lang/src/inspect.rs crates/vine-lang/src/interp.rs crates/vine-lang/src/lexer.rs crates/vine-lang/src/modules.rs crates/vine-lang/src/parser.rs crates/vine-lang/src/pickle.rs crates/vine-lang/src/value.rs Cargo.toml

crates/vine-lang/src/lib.rs:
crates/vine-lang/src/ast.rs:
crates/vine-lang/src/autocontext.rs:
crates/vine-lang/src/builtins.rs:
crates/vine-lang/src/inspect.rs:
crates/vine-lang/src/interp.rs:
crates/vine-lang/src/lexer.rs:
crates/vine-lang/src/modules.rs:
crates/vine-lang/src/parser.rs:
crates/vine-lang/src/pickle.rs:
crates/vine-lang/src/value.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
