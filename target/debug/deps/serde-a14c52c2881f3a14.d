/root/repo/target/debug/deps/serde-a14c52c2881f3a14.d: shims/serde/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde-a14c52c2881f3a14.rmeta: shims/serde/src/lib.rs Cargo.toml

shims/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
