/root/repo/target/debug/deps/vine_core-b224290bcf6a1a42.d: crates/vine-core/src/lib.rs crates/vine-core/src/config.rs crates/vine-core/src/context.rs crates/vine-core/src/error.rs crates/vine-core/src/ids.rs crates/vine-core/src/resources.rs crates/vine-core/src/task.rs crates/vine-core/src/time.rs crates/vine-core/src/trace.rs

/root/repo/target/debug/deps/libvine_core-b224290bcf6a1a42.rlib: crates/vine-core/src/lib.rs crates/vine-core/src/config.rs crates/vine-core/src/context.rs crates/vine-core/src/error.rs crates/vine-core/src/ids.rs crates/vine-core/src/resources.rs crates/vine-core/src/task.rs crates/vine-core/src/time.rs crates/vine-core/src/trace.rs

/root/repo/target/debug/deps/libvine_core-b224290bcf6a1a42.rmeta: crates/vine-core/src/lib.rs crates/vine-core/src/config.rs crates/vine-core/src/context.rs crates/vine-core/src/error.rs crates/vine-core/src/ids.rs crates/vine-core/src/resources.rs crates/vine-core/src/task.rs crates/vine-core/src/time.rs crates/vine-core/src/trace.rs

crates/vine-core/src/lib.rs:
crates/vine-core/src/config.rs:
crates/vine-core/src/context.rs:
crates/vine-core/src/error.rs:
crates/vine-core/src/ids.rs:
crates/vine-core/src/resources.rs:
crates/vine-core/src/task.rs:
crates/vine-core/src/time.rs:
crates/vine-core/src/trace.rs:
