/root/repo/target/debug/deps/preflight-10dd334620fd8bab.d: crates/vine-runtime/tests/preflight.rs Cargo.toml

/root/repo/target/debug/deps/libpreflight-10dd334620fd8bab.rmeta: crates/vine-runtime/tests/preflight.rs Cargo.toml

crates/vine-runtime/tests/preflight.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
