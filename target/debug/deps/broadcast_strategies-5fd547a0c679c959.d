/root/repo/target/debug/deps/broadcast_strategies-5fd547a0c679c959.d: examples/broadcast_strategies.rs Cargo.toml

/root/repo/target/debug/deps/libbroadcast_strategies-5fd547a0c679c959.rmeta: examples/broadcast_strategies.rs Cargo.toml

examples/broadcast_strategies.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
