/root/repo/target/debug/deps/sim_tests-c2339dc9117244fd.d: crates/vine-sim/tests/sim_tests.rs

/root/repo/target/debug/deps/sim_tests-c2339dc9117244fd: crates/vine-sim/tests/sim_tests.rs

crates/vine-sim/tests/sim_tests.rs:
