/root/repo/target/debug/deps/serde_derive_shim-0bdfa3f0d2afa1cb.d: shims/serde_derive_shim/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde_derive_shim-0bdfa3f0d2afa1cb.rmeta: shims/serde_derive_shim/src/lib.rs Cargo.toml

shims/serde_derive_shim/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
