/root/repo/target/debug/deps/vine_manager-ca5effaca09ff6f4.d: crates/vine-manager/src/lib.rs crates/vine-manager/src/index.rs crates/vine-manager/src/manager.rs crates/vine-manager/src/reference.rs crates/vine-manager/src/ring.rs

/root/repo/target/debug/deps/libvine_manager-ca5effaca09ff6f4.rlib: crates/vine-manager/src/lib.rs crates/vine-manager/src/index.rs crates/vine-manager/src/manager.rs crates/vine-manager/src/reference.rs crates/vine-manager/src/ring.rs

/root/repo/target/debug/deps/libvine_manager-ca5effaca09ff6f4.rmeta: crates/vine-manager/src/lib.rs crates/vine-manager/src/index.rs crates/vine-manager/src/manager.rs crates/vine-manager/src/reference.rs crates/vine-manager/src/ring.rs

crates/vine-manager/src/lib.rs:
crates/vine-manager/src/index.rs:
crates/vine-manager/src/manager.rs:
crates/vine-manager/src/reference.rs:
crates/vine-manager/src/ring.rs:
