/root/repo/target/debug/deps/serde-f2fd7e77112b01ef.d: shims/serde/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde-f2fd7e77112b01ef.rmeta: shims/serde/src/lib.rs Cargo.toml

shims/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
