/root/repo/target/debug/deps/vine_dag-26f3fb76e819d5e1.d: crates/vine-dag/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libvine_dag-26f3fb76e819d5e1.rmeta: crates/vine-dag/src/lib.rs Cargo.toml

crates/vine-dag/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
