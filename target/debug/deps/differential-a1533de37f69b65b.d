/root/repo/target/debug/deps/differential-a1533de37f69b65b.d: crates/vine-manager/tests/differential.rs Cargo.toml

/root/repo/target/debug/deps/libdifferential-a1533de37f69b65b.rmeta: crates/vine-manager/tests/differential.rs Cargo.toml

crates/vine-manager/tests/differential.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
