/root/repo/target/debug/deps/bench-ff8d1d4d3d920d24.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/bench-ff8d1d4d3d920d24: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/table.rs:
