/root/repo/target/debug/deps/vine_sim-3438b9d9136738f1.d: crates/vine-sim/src/lib.rs crates/vine-sim/src/cluster.rs crates/vine-sim/src/engine.rs crates/vine-sim/src/run.rs

/root/repo/target/debug/deps/libvine_sim-3438b9d9136738f1.rlib: crates/vine-sim/src/lib.rs crates/vine-sim/src/cluster.rs crates/vine-sim/src/engine.rs crates/vine-sim/src/run.rs

/root/repo/target/debug/deps/libvine_sim-3438b9d9136738f1.rmeta: crates/vine-sim/src/lib.rs crates/vine-sim/src/cluster.rs crates/vine-sim/src/engine.rs crates/vine-sim/src/run.rs

crates/vine-sim/src/lib.rs:
crates/vine-sim/src/cluster.rs:
crates/vine-sim/src/engine.rs:
crates/vine-sim/src/run.rs:
