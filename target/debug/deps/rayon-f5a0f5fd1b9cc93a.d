/root/repo/target/debug/deps/rayon-f5a0f5fd1b9cc93a.d: shims/rayon/src/lib.rs

/root/repo/target/debug/deps/librayon-f5a0f5fd1b9cc93a.rlib: shims/rayon/src/lib.rs

/root/repo/target/debug/deps/librayon-f5a0f5fd1b9cc93a.rmeta: shims/rayon/src/lib.rs

shims/rayon/src/lib.rs:
