/root/repo/target/debug/deps/autocontext_live-23d18926dc17f390.d: tests/tests/autocontext_live.rs Cargo.toml

/root/repo/target/debug/deps/libautocontext_live-23d18926dc17f390.rmeta: tests/tests/autocontext_live.rs Cargo.toml

tests/tests/autocontext_live.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
