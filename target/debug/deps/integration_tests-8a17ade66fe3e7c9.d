/root/repo/target/debug/deps/integration_tests-8a17ade66fe3e7c9.d: tests/src/lib.rs

/root/repo/target/debug/deps/libintegration_tests-8a17ade66fe3e7c9.rlib: tests/src/lib.rs

/root/repo/target/debug/deps/libintegration_tests-8a17ade66fe3e7c9.rmeta: tests/src/lib.rs

tests/src/lib.rs:
