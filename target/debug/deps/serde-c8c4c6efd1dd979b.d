/root/repo/target/debug/deps/serde-c8c4c6efd1dd979b.d: shims/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-c8c4c6efd1dd979b.rlib: shims/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-c8c4c6efd1dd979b.rmeta: shims/serde/src/lib.rs

shims/serde/src/lib.rs:
