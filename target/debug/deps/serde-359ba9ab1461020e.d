/root/repo/target/debug/deps/serde-359ba9ab1461020e.d: shims/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-359ba9ab1461020e.rlib: shims/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-359ba9ab1461020e.rmeta: shims/serde/src/lib.rs

shims/serde/src/lib.rs:
