/root/repo/target/debug/deps/vine_manager-5b554e520a0d819b.d: crates/vine-manager/src/lib.rs crates/vine-manager/src/index.rs crates/vine-manager/src/manager.rs crates/vine-manager/src/reference.rs crates/vine-manager/src/ring.rs

/root/repo/target/debug/deps/libvine_manager-5b554e520a0d819b.rlib: crates/vine-manager/src/lib.rs crates/vine-manager/src/index.rs crates/vine-manager/src/manager.rs crates/vine-manager/src/reference.rs crates/vine-manager/src/ring.rs

/root/repo/target/debug/deps/libvine_manager-5b554e520a0d819b.rmeta: crates/vine-manager/src/lib.rs crates/vine-manager/src/index.rs crates/vine-manager/src/manager.rs crates/vine-manager/src/reference.rs crates/vine-manager/src/ring.rs

crates/vine-manager/src/lib.rs:
crates/vine-manager/src/index.rs:
crates/vine-manager/src/manager.rs:
crates/vine-manager/src/reference.rs:
crates/vine-manager/src/ring.rs:
