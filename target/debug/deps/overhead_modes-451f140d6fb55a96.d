/root/repo/target/debug/deps/overhead_modes-451f140d6fb55a96.d: crates/bench/benches/overhead_modes.rs Cargo.toml

/root/repo/target/debug/deps/liboverhead_modes-451f140d6fb55a96.rmeta: crates/bench/benches/overhead_modes.rs Cargo.toml

crates/bench/benches/overhead_modes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
