/root/repo/target/debug/deps/vine_lint-7894e18e4557c3b5.d: crates/vine-lint/src/lib.rs crates/vine-lint/src/dag.rs crates/vine-lint/src/diag.rs crates/vine-lint/src/environment.rs crates/vine-lint/src/language.rs crates/vine-lint/src/placement.rs

/root/repo/target/debug/deps/vine_lint-7894e18e4557c3b5: crates/vine-lint/src/lib.rs crates/vine-lint/src/dag.rs crates/vine-lint/src/diag.rs crates/vine-lint/src/environment.rs crates/vine-lint/src/language.rs crates/vine-lint/src/placement.rs

crates/vine-lint/src/lib.rs:
crates/vine-lint/src/dag.rs:
crates/vine-lint/src/diag.rs:
crates/vine-lint/src/environment.rs:
crates/vine-lint/src/language.rs:
crates/vine-lint/src/placement.rs:
