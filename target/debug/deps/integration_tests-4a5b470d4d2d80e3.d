/root/repo/target/debug/deps/integration_tests-4a5b470d4d2d80e3.d: tests/src/lib.rs

/root/repo/target/debug/deps/libintegration_tests-4a5b470d4d2d80e3.rlib: tests/src/lib.rs

/root/repo/target/debug/deps/libintegration_tests-4a5b470d4d2d80e3.rmeta: tests/src/lib.rs

tests/src/lib.rs:
