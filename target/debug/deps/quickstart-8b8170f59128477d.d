/root/repo/target/debug/deps/quickstart-8b8170f59128477d.d: examples/quickstart.rs

/root/repo/target/debug/deps/quickstart-8b8170f59128477d: examples/quickstart.rs

examples/quickstart.rs:
