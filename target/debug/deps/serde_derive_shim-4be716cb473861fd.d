/root/repo/target/debug/deps/serde_derive_shim-4be716cb473861fd.d: shims/serde_derive_shim/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde_derive_shim-4be716cb473861fd.rmeta: shims/serde_derive_shim/src/lib.rs Cargo.toml

shims/serde_derive_shim/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
