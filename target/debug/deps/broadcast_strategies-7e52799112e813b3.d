/root/repo/target/debug/deps/broadcast_strategies-7e52799112e813b3.d: examples/broadcast_strategies.rs

/root/repo/target/debug/deps/broadcast_strategies-7e52799112e813b3: examples/broadcast_strategies.rs

examples/broadcast_strategies.rs:
