/root/repo/target/debug/deps/vine_apps-4c15bd5e3de41a2d.d: crates/vine-apps/src/lib.rs crates/vine-apps/src/examol.rs crates/vine-apps/src/lnni.rs crates/vine-apps/src/modules.rs

/root/repo/target/debug/deps/libvine_apps-4c15bd5e3de41a2d.rlib: crates/vine-apps/src/lib.rs crates/vine-apps/src/examol.rs crates/vine-apps/src/lnni.rs crates/vine-apps/src/modules.rs

/root/repo/target/debug/deps/libvine_apps-4c15bd5e3de41a2d.rmeta: crates/vine-apps/src/lib.rs crates/vine-apps/src/examol.rs crates/vine-apps/src/lnni.rs crates/vine-apps/src/modules.rs

crates/vine-apps/src/lib.rs:
crates/vine-apps/src/examol.rs:
crates/vine-apps/src/lnni.rs:
crates/vine-apps/src/modules.rs:
