/root/repo/target/debug/deps/quickstart-8232d6275157e2aa.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/deps/libquickstart-8232d6275157e2aa.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
