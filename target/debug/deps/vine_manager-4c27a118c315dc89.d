/root/repo/target/debug/deps/vine_manager-4c27a118c315dc89.d: crates/vine-manager/src/lib.rs crates/vine-manager/src/index.rs crates/vine-manager/src/manager.rs crates/vine-manager/src/reference.rs crates/vine-manager/src/ring.rs Cargo.toml

/root/repo/target/debug/deps/libvine_manager-4c27a118c315dc89.rmeta: crates/vine-manager/src/lib.rs crates/vine-manager/src/index.rs crates/vine-manager/src/manager.rs crates/vine-manager/src/reference.rs crates/vine-manager/src/ring.rs Cargo.toml

crates/vine-manager/src/lib.rs:
crates/vine-manager/src/index.rs:
crates/vine-manager/src/manager.rs:
crates/vine-manager/src/reference.rs:
crates/vine-manager/src/ring.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
