/root/repo/target/debug/deps/examol_design-779fefe18e443b84.d: examples/examol_design.rs

/root/repo/target/debug/deps/examol_design-779fefe18e443b84: examples/examol_design.rs

examples/examol_design.rs:
