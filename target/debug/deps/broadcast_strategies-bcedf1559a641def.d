/root/repo/target/debug/deps/broadcast_strategies-bcedf1559a641def.d: examples/broadcast_strategies.rs

/root/repo/target/debug/deps/broadcast_strategies-bcedf1559a641def: examples/broadcast_strategies.rs

examples/broadcast_strategies.rs:
