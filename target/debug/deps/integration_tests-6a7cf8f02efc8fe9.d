/root/repo/target/debug/deps/integration_tests-6a7cf8f02efc8fe9.d: tests/src/lib.rs

/root/repo/target/debug/deps/integration_tests-6a7cf8f02efc8fe9: tests/src/lib.rs

tests/src/lib.rs:
