/root/repo/target/debug/deps/serde-c39cc93b82f4852a.d: shims/serde/src/lib.rs

/root/repo/target/debug/deps/serde-c39cc93b82f4852a: shims/serde/src/lib.rs

shims/serde/src/lib.rs:
