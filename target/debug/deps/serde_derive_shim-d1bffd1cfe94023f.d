/root/repo/target/debug/deps/serde_derive_shim-d1bffd1cfe94023f.d: shims/serde_derive_shim/src/lib.rs

/root/repo/target/debug/deps/libserde_derive_shim-d1bffd1cfe94023f.so: shims/serde_derive_shim/src/lib.rs

shims/serde_derive_shim/src/lib.rs:
