/root/repo/target/debug/deps/vine_runtime-51a14d4861676f7a.d: crates/vine-runtime/src/lib.rs crates/vine-runtime/src/library_host.rs crates/vine-runtime/src/runtime.rs crates/vine-runtime/src/worker_host.rs

/root/repo/target/debug/deps/libvine_runtime-51a14d4861676f7a.rlib: crates/vine-runtime/src/lib.rs crates/vine-runtime/src/library_host.rs crates/vine-runtime/src/runtime.rs crates/vine-runtime/src/worker_host.rs

/root/repo/target/debug/deps/libvine_runtime-51a14d4861676f7a.rmeta: crates/vine-runtime/src/lib.rs crates/vine-runtime/src/library_host.rs crates/vine-runtime/src/runtime.rs crates/vine-runtime/src/worker_host.rs

crates/vine-runtime/src/lib.rs:
crates/vine-runtime/src/library_host.rs:
crates/vine-runtime/src/runtime.rs:
crates/vine-runtime/src/worker_host.rs:
