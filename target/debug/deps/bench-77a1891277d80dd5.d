/root/repo/target/debug/deps/bench-77a1891277d80dd5.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libbench-77a1891277d80dd5.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libbench-77a1891277d80dd5.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/table.rs:
