/root/repo/target/debug/deps/substrate_properties-f313d7e4d9d91d0b.d: tests/tests/substrate_properties.rs

/root/repo/target/debug/deps/substrate_properties-f313d7e4d9d91d0b: tests/tests/substrate_properties.rs

tests/tests/substrate_properties.rs:
