/root/repo/target/debug/deps/serde_json-705221a5d8a54553.d: shims/serde_json/src/lib.rs

/root/repo/target/debug/deps/serde_json-705221a5d8a54553: shims/serde_json/src/lib.rs

shims/serde_json/src/lib.rs:
