/root/repo/target/debug/deps/bench-f7ad33d47431647f.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libbench-f7ad33d47431647f.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libbench-f7ad33d47431647f.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/table.rs:
