/root/repo/target/debug/deps/repro-cb6ba3c54e9839cd.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-cb6ba3c54e9839cd: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
