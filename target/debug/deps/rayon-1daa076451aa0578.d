/root/repo/target/debug/deps/rayon-1daa076451aa0578.d: shims/rayon/src/lib.rs

/root/repo/target/debug/deps/rayon-1daa076451aa0578: shims/rayon/src/lib.rs

shims/rayon/src/lib.rs:
