/root/repo/target/debug/deps/lint_clean-7c8b23fbfd40bb13.d: crates/bench/tests/lint_clean.rs

/root/repo/target/debug/deps/lint_clean-7c8b23fbfd40bb13: crates/bench/tests/lint_clean.rs

crates/bench/tests/lint_clean.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
