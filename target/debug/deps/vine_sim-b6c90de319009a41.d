/root/repo/target/debug/deps/vine_sim-b6c90de319009a41.d: crates/vine-sim/src/lib.rs crates/vine-sim/src/cluster.rs crates/vine-sim/src/engine.rs crates/vine-sim/src/reference.rs crates/vine-sim/src/run.rs

/root/repo/target/debug/deps/libvine_sim-b6c90de319009a41.rlib: crates/vine-sim/src/lib.rs crates/vine-sim/src/cluster.rs crates/vine-sim/src/engine.rs crates/vine-sim/src/reference.rs crates/vine-sim/src/run.rs

/root/repo/target/debug/deps/libvine_sim-b6c90de319009a41.rmeta: crates/vine-sim/src/lib.rs crates/vine-sim/src/cluster.rs crates/vine-sim/src/engine.rs crates/vine-sim/src/reference.rs crates/vine-sim/src/run.rs

crates/vine-sim/src/lib.rs:
crates/vine-sim/src/cluster.rs:
crates/vine-sim/src/engine.rs:
crates/vine-sim/src/reference.rs:
crates/vine-sim/src/run.rs:
