/root/repo/target/debug/deps/vine_data-2ce94faad377ad23.d: crates/vine-data/src/lib.rs crates/vine-data/src/cache.rs crates/vine-data/src/sharedfs.rs crates/vine-data/src/store.rs Cargo.toml

/root/repo/target/debug/deps/libvine_data-2ce94faad377ad23.rmeta: crates/vine-data/src/lib.rs crates/vine-data/src/cache.rs crates/vine-data/src/sharedfs.rs crates/vine-data/src/store.rs Cargo.toml

crates/vine-data/src/lib.rs:
crates/vine-data/src/cache.rs:
crates/vine-data/src/sharedfs.rs:
crates/vine-data/src/store.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
