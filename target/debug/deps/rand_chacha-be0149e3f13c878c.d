/root/repo/target/debug/deps/rand_chacha-be0149e3f13c878c.d: shims/rand_chacha/src/lib.rs

/root/repo/target/debug/deps/librand_chacha-be0149e3f13c878c.rlib: shims/rand_chacha/src/lib.rs

/root/repo/target/debug/deps/librand_chacha-be0149e3f13c878c.rmeta: shims/rand_chacha/src/lib.rs

shims/rand_chacha/src/lib.rs:
