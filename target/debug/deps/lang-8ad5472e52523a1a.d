/root/repo/target/debug/deps/lang-8ad5472e52523a1a.d: crates/bench/benches/lang.rs Cargo.toml

/root/repo/target/debug/deps/liblang-8ad5472e52523a1a.rmeta: crates/bench/benches/lang.rs Cargo.toml

crates/bench/benches/lang.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
