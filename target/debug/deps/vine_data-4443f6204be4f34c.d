/root/repo/target/debug/deps/vine_data-4443f6204be4f34c.d: crates/vine-data/src/lib.rs crates/vine-data/src/cache.rs crates/vine-data/src/sharedfs.rs crates/vine-data/src/store.rs

/root/repo/target/debug/deps/libvine_data-4443f6204be4f34c.rlib: crates/vine-data/src/lib.rs crates/vine-data/src/cache.rs crates/vine-data/src/sharedfs.rs crates/vine-data/src/store.rs

/root/repo/target/debug/deps/libvine_data-4443f6204be4f34c.rmeta: crates/vine-data/src/lib.rs crates/vine-data/src/cache.rs crates/vine-data/src/sharedfs.rs crates/vine-data/src/store.rs

crates/vine-data/src/lib.rs:
crates/vine-data/src/cache.rs:
crates/vine-data/src/sharedfs.rs:
crates/vine-data/src/store.rs:
