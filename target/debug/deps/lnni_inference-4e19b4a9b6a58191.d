/root/repo/target/debug/deps/lnni_inference-4e19b4a9b6a58191.d: examples/lnni_inference.rs Cargo.toml

/root/repo/target/debug/deps/liblnni_inference-4e19b4a9b6a58191.rmeta: examples/lnni_inference.rs Cargo.toml

examples/lnni_inference.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
