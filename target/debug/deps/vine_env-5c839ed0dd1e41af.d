/root/repo/target/debug/deps/vine_env-5c839ed0dd1e41af.d: crates/vine-env/src/lib.rs crates/vine-env/src/archive.rs crates/vine-env/src/catalog.rs crates/vine-env/src/registry.rs crates/vine-env/src/resolve.rs

/root/repo/target/debug/deps/vine_env-5c839ed0dd1e41af: crates/vine-env/src/lib.rs crates/vine-env/src/archive.rs crates/vine-env/src/catalog.rs crates/vine-env/src/registry.rs crates/vine-env/src/resolve.rs

crates/vine-env/src/lib.rs:
crates/vine-env/src/archive.rs:
crates/vine-env/src/catalog.rs:
crates/vine-env/src/registry.rs:
crates/vine-env/src/resolve.rs:
