/root/repo/target/debug/deps/substrate_properties-aa925d803436af68.d: tests/tests/substrate_properties.rs

/root/repo/target/debug/deps/substrate_properties-aa925d803436af68: tests/tests/substrate_properties.rs

tests/tests/substrate_properties.rs:
