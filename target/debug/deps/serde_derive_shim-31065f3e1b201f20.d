/root/repo/target/debug/deps/serde_derive_shim-31065f3e1b201f20.d: shims/serde_derive_shim/src/lib.rs

/root/repo/target/debug/deps/serde_derive_shim-31065f3e1b201f20: shims/serde_derive_shim/src/lib.rs

shims/serde_derive_shim/src/lib.rs:
