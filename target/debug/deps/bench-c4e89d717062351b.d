/root/repo/target/debug/deps/bench-c4e89d717062351b.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/bench-c4e89d717062351b: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/table.rs:
