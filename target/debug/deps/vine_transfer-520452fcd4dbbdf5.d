/root/repo/target/debug/deps/vine_transfer-520452fcd4dbbdf5.d: crates/vine-transfer/src/lib.rs

/root/repo/target/debug/deps/libvine_transfer-520452fcd4dbbdf5.rlib: crates/vine-transfer/src/lib.rs

/root/repo/target/debug/deps/libvine_transfer-520452fcd4dbbdf5.rmeta: crates/vine-transfer/src/lib.rs

crates/vine-transfer/src/lib.rs:
