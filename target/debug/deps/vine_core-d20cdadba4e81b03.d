/root/repo/target/debug/deps/vine_core-d20cdadba4e81b03.d: crates/vine-core/src/lib.rs crates/vine-core/src/config.rs crates/vine-core/src/context.rs crates/vine-core/src/error.rs crates/vine-core/src/ids.rs crates/vine-core/src/resources.rs crates/vine-core/src/task.rs crates/vine-core/src/time.rs crates/vine-core/src/trace.rs

/root/repo/target/debug/deps/vine_core-d20cdadba4e81b03: crates/vine-core/src/lib.rs crates/vine-core/src/config.rs crates/vine-core/src/context.rs crates/vine-core/src/error.rs crates/vine-core/src/ids.rs crates/vine-core/src/resources.rs crates/vine-core/src/task.rs crates/vine-core/src/time.rs crates/vine-core/src/trace.rs

crates/vine-core/src/lib.rs:
crates/vine-core/src/config.rs:
crates/vine-core/src/context.rs:
crates/vine-core/src/error.rs:
crates/vine-core/src/ids.rs:
crates/vine-core/src/resources.rs:
crates/vine-core/src/task.rs:
crates/vine-core/src/time.rs:
crates/vine-core/src/trace.rs:
