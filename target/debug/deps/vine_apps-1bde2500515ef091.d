/root/repo/target/debug/deps/vine_apps-1bde2500515ef091.d: crates/vine-apps/src/lib.rs crates/vine-apps/src/examol.rs crates/vine-apps/src/lnni.rs crates/vine-apps/src/modules.rs Cargo.toml

/root/repo/target/debug/deps/libvine_apps-1bde2500515ef091.rmeta: crates/vine-apps/src/lib.rs crates/vine-apps/src/examol.rs crates/vine-apps/src/lnni.rs crates/vine-apps/src/modules.rs Cargo.toml

crates/vine-apps/src/lib.rs:
crates/vine-apps/src/examol.rs:
crates/vine-apps/src/lnni.rs:
crates/vine-apps/src/modules.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
