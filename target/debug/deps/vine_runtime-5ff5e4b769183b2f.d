/root/repo/target/debug/deps/vine_runtime-5ff5e4b769183b2f.d: crates/vine-runtime/src/lib.rs crates/vine-runtime/src/library_host.rs crates/vine-runtime/src/runtime.rs crates/vine-runtime/src/worker_host.rs

/root/repo/target/debug/deps/vine_runtime-5ff5e4b769183b2f: crates/vine-runtime/src/lib.rs crates/vine-runtime/src/library_host.rs crates/vine-runtime/src/runtime.rs crates/vine-runtime/src/worker_host.rs

crates/vine-runtime/src/lib.rs:
crates/vine-runtime/src/library_host.rs:
crates/vine-runtime/src/runtime.rs:
crates/vine-runtime/src/worker_host.rs:
