/root/repo/target/debug/deps/vine_worker-ee10aa9359f9804b.d: crates/vine-worker/src/lib.rs crates/vine-worker/src/library.rs crates/vine-worker/src/protocol.rs crates/vine-worker/src/sandbox.rs crates/vine-worker/src/state.rs

/root/repo/target/debug/deps/libvine_worker-ee10aa9359f9804b.rlib: crates/vine-worker/src/lib.rs crates/vine-worker/src/library.rs crates/vine-worker/src/protocol.rs crates/vine-worker/src/sandbox.rs crates/vine-worker/src/state.rs

/root/repo/target/debug/deps/libvine_worker-ee10aa9359f9804b.rmeta: crates/vine-worker/src/lib.rs crates/vine-worker/src/library.rs crates/vine-worker/src/protocol.rs crates/vine-worker/src/sandbox.rs crates/vine-worker/src/state.rs

crates/vine-worker/src/lib.rs:
crates/vine-worker/src/library.rs:
crates/vine-worker/src/protocol.rs:
crates/vine-worker/src/sandbox.rs:
crates/vine-worker/src/state.rs:
