/root/repo/target/debug/deps/serde_json-64e784bb721a053b.d: shims/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-64e784bb721a053b.rlib: shims/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-64e784bb721a053b.rmeta: shims/serde_json/src/lib.rs

shims/serde_json/src/lib.rs:
