/root/repo/target/debug/deps/vine_dag-8043d25016039e5b.d: crates/vine-dag/src/lib.rs

/root/repo/target/debug/deps/libvine_dag-8043d25016039e5b.rlib: crates/vine-dag/src/lib.rs

/root/repo/target/debug/deps/libvine_dag-8043d25016039e5b.rmeta: crates/vine-dag/src/lib.rs

crates/vine-dag/src/lib.rs:
