/root/repo/target/debug/deps/bench-685fc59ba035cd54.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs Cargo.toml

/root/repo/target/debug/deps/libbench-685fc59ba035cd54.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
