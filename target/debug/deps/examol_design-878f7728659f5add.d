/root/repo/target/debug/deps/examol_design-878f7728659f5add.d: examples/examol_design.rs

/root/repo/target/debug/deps/examol_design-878f7728659f5add: examples/examol_design.rs

examples/examol_design.rs:
