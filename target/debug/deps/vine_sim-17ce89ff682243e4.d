/root/repo/target/debug/deps/vine_sim-17ce89ff682243e4.d: crates/vine-sim/src/lib.rs crates/vine-sim/src/cluster.rs crates/vine-sim/src/engine.rs crates/vine-sim/src/reference.rs crates/vine-sim/src/run.rs Cargo.toml

/root/repo/target/debug/deps/libvine_sim-17ce89ff682243e4.rmeta: crates/vine-sim/src/lib.rs crates/vine-sim/src/cluster.rs crates/vine-sim/src/engine.rs crates/vine-sim/src/reference.rs crates/vine-sim/src/run.rs Cargo.toml

crates/vine-sim/src/lib.rs:
crates/vine-sim/src/cluster.rs:
crates/vine-sim/src/engine.rs:
crates/vine-sim/src/reference.rs:
crates/vine-sim/src/run.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
