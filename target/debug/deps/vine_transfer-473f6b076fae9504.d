/root/repo/target/debug/deps/vine_transfer-473f6b076fae9504.d: crates/vine-transfer/src/lib.rs

/root/repo/target/debug/deps/vine_transfer-473f6b076fae9504: crates/vine-transfer/src/lib.rs

crates/vine-transfer/src/lib.rs:
