/root/repo/target/debug/deps/lnni_inference-983fe2a856e4cfb2.d: examples/lnni_inference.rs

/root/repo/target/debug/deps/lnni_inference-983fe2a856e4cfb2: examples/lnni_inference.rs

examples/lnni_inference.rs:
