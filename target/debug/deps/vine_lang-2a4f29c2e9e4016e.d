/root/repo/target/debug/deps/vine_lang-2a4f29c2e9e4016e.d: crates/vine-lang/src/lib.rs crates/vine-lang/src/ast.rs crates/vine-lang/src/autocontext.rs crates/vine-lang/src/builtins.rs crates/vine-lang/src/inspect.rs crates/vine-lang/src/interp.rs crates/vine-lang/src/lexer.rs crates/vine-lang/src/modules.rs crates/vine-lang/src/parser.rs crates/vine-lang/src/pickle.rs crates/vine-lang/src/value.rs

/root/repo/target/debug/deps/libvine_lang-2a4f29c2e9e4016e.rlib: crates/vine-lang/src/lib.rs crates/vine-lang/src/ast.rs crates/vine-lang/src/autocontext.rs crates/vine-lang/src/builtins.rs crates/vine-lang/src/inspect.rs crates/vine-lang/src/interp.rs crates/vine-lang/src/lexer.rs crates/vine-lang/src/modules.rs crates/vine-lang/src/parser.rs crates/vine-lang/src/pickle.rs crates/vine-lang/src/value.rs

/root/repo/target/debug/deps/libvine_lang-2a4f29c2e9e4016e.rmeta: crates/vine-lang/src/lib.rs crates/vine-lang/src/ast.rs crates/vine-lang/src/autocontext.rs crates/vine-lang/src/builtins.rs crates/vine-lang/src/inspect.rs crates/vine-lang/src/interp.rs crates/vine-lang/src/lexer.rs crates/vine-lang/src/modules.rs crates/vine-lang/src/parser.rs crates/vine-lang/src/pickle.rs crates/vine-lang/src/value.rs

crates/vine-lang/src/lib.rs:
crates/vine-lang/src/ast.rs:
crates/vine-lang/src/autocontext.rs:
crates/vine-lang/src/builtins.rs:
crates/vine-lang/src/inspect.rs:
crates/vine-lang/src/interp.rs:
crates/vine-lang/src/lexer.rs:
crates/vine-lang/src/modules.rs:
crates/vine-lang/src/parser.rs:
crates/vine-lang/src/pickle.rs:
crates/vine-lang/src/value.rs:
