/root/repo/target/debug/deps/vine_dag-62db2c2eebb29106.d: crates/vine-dag/src/lib.rs

/root/repo/target/debug/deps/vine_dag-62db2c2eebb29106: crates/vine-dag/src/lib.rs

crates/vine-dag/src/lib.rs:
