/root/repo/target/debug/deps/vine_dag-6d25057cf095e507.d: crates/vine-dag/src/lib.rs

/root/repo/target/debug/deps/libvine_dag-6d25057cf095e507.rlib: crates/vine-dag/src/lib.rs

/root/repo/target/debug/deps/libvine_dag-6d25057cf095e507.rmeta: crates/vine-dag/src/lib.rs

crates/vine-dag/src/lib.rs:
