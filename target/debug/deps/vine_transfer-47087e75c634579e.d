/root/repo/target/debug/deps/vine_transfer-47087e75c634579e.d: crates/vine-transfer/src/lib.rs

/root/repo/target/debug/deps/libvine_transfer-47087e75c634579e.rlib: crates/vine-transfer/src/lib.rs

/root/repo/target/debug/deps/libvine_transfer-47087e75c634579e.rmeta: crates/vine-transfer/src/lib.rs

crates/vine-transfer/src/lib.rs:
