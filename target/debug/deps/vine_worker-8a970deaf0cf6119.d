/root/repo/target/debug/deps/vine_worker-8a970deaf0cf6119.d: crates/vine-worker/src/lib.rs crates/vine-worker/src/library.rs crates/vine-worker/src/protocol.rs crates/vine-worker/src/sandbox.rs crates/vine-worker/src/state.rs

/root/repo/target/debug/deps/vine_worker-8a970deaf0cf6119: crates/vine-worker/src/lib.rs crates/vine-worker/src/library.rs crates/vine-worker/src/protocol.rs crates/vine-worker/src/sandbox.rs crates/vine-worker/src/state.rs

crates/vine-worker/src/lib.rs:
crates/vine-worker/src/library.rs:
crates/vine-worker/src/protocol.rs:
crates/vine-worker/src/sandbox.rs:
crates/vine-worker/src/state.rs:
