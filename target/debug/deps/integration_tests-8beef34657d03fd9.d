/root/repo/target/debug/deps/integration_tests-8beef34657d03fd9.d: tests/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_tests-8beef34657d03fd9.rmeta: tests/src/lib.rs Cargo.toml

tests/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
