/root/repo/target/debug/deps/rand_chacha-8487da3925a110e4.d: shims/rand_chacha/src/lib.rs

/root/repo/target/debug/deps/rand_chacha-8487da3925a110e4: shims/rand_chacha/src/lib.rs

shims/rand_chacha/src/lib.rs:
