/root/repo/target/debug/deps/lnni_inference-e41a55b429c5c43f.d: examples/lnni_inference.rs

/root/repo/target/debug/deps/lnni_inference-e41a55b429c5c43f: examples/lnni_inference.rs

examples/lnni_inference.rs:
