/root/repo/target/debug/deps/repro-5c505cfe125a42a3.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-5c505cfe125a42a3: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
