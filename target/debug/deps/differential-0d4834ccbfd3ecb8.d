/root/repo/target/debug/deps/differential-0d4834ccbfd3ecb8.d: crates/vine-manager/tests/differential.rs

/root/repo/target/debug/deps/differential-0d4834ccbfd3ecb8: crates/vine-manager/tests/differential.rs

crates/vine-manager/tests/differential.rs:
