/root/repo/target/debug/deps/vine_runtime-41c70d77d335e9a8.d: crates/vine-runtime/src/lib.rs crates/vine-runtime/src/library_host.rs crates/vine-runtime/src/runtime.rs crates/vine-runtime/src/worker_host.rs

/root/repo/target/debug/deps/vine_runtime-41c70d77d335e9a8: crates/vine-runtime/src/lib.rs crates/vine-runtime/src/library_host.rs crates/vine-runtime/src/runtime.rs crates/vine-runtime/src/worker_host.rs

crates/vine-runtime/src/lib.rs:
crates/vine-runtime/src/library_host.rs:
crates/vine-runtime/src/runtime.rs:
crates/vine-runtime/src/worker_host.rs:
