/root/repo/target/debug/deps/bench-33cb81383da38500.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libbench-33cb81383da38500.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libbench-33cb81383da38500.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/table.rs:
