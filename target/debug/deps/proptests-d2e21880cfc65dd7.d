/root/repo/target/debug/deps/proptests-d2e21880cfc65dd7.d: crates/vine-lang/tests/proptests.rs

/root/repo/target/debug/deps/proptests-d2e21880cfc65dd7: crates/vine-lang/tests/proptests.rs

crates/vine-lang/tests/proptests.rs:
