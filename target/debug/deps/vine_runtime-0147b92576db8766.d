/root/repo/target/debug/deps/vine_runtime-0147b92576db8766.d: crates/vine-runtime/src/lib.rs crates/vine-runtime/src/library_host.rs crates/vine-runtime/src/runtime.rs crates/vine-runtime/src/worker_host.rs Cargo.toml

/root/repo/target/debug/deps/libvine_runtime-0147b92576db8766.rmeta: crates/vine-runtime/src/lib.rs crates/vine-runtime/src/library_host.rs crates/vine-runtime/src/runtime.rs crates/vine-runtime/src/worker_host.rs Cargo.toml

crates/vine-runtime/src/lib.rs:
crates/vine-runtime/src/library_host.rs:
crates/vine-runtime/src/runtime.rs:
crates/vine-runtime/src/worker_host.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
