/root/repo/target/debug/deps/vine_dag-7ce02399eb1fe08f.d: crates/vine-dag/src/lib.rs

/root/repo/target/debug/deps/vine_dag-7ce02399eb1fe08f: crates/vine-dag/src/lib.rs

crates/vine-dag/src/lib.rs:
