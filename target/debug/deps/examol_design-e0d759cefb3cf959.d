/root/repo/target/debug/deps/examol_design-e0d759cefb3cf959.d: examples/examol_design.rs

/root/repo/target/debug/deps/examol_design-e0d759cefb3cf959: examples/examol_design.rs

examples/examol_design.rs:
