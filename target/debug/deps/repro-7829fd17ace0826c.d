/root/repo/target/debug/deps/repro-7829fd17ace0826c.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-7829fd17ace0826c: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
