/root/repo/target/debug/deps/vine_runtime-b222dcfcbf5dc722.d: crates/vine-runtime/src/lib.rs crates/vine-runtime/src/library_host.rs crates/vine-runtime/src/runtime.rs crates/vine-runtime/src/worker_host.rs

/root/repo/target/debug/deps/libvine_runtime-b222dcfcbf5dc722.rlib: crates/vine-runtime/src/lib.rs crates/vine-runtime/src/library_host.rs crates/vine-runtime/src/runtime.rs crates/vine-runtime/src/worker_host.rs

/root/repo/target/debug/deps/libvine_runtime-b222dcfcbf5dc722.rmeta: crates/vine-runtime/src/lib.rs crates/vine-runtime/src/library_host.rs crates/vine-runtime/src/runtime.rs crates/vine-runtime/src/worker_host.rs

crates/vine-runtime/src/lib.rs:
crates/vine-runtime/src/library_host.rs:
crates/vine-runtime/src/runtime.rs:
crates/vine-runtime/src/worker_host.rs:
