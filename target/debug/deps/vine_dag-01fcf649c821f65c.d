/root/repo/target/debug/deps/vine_dag-01fcf649c821f65c.d: crates/vine-dag/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libvine_dag-01fcf649c821f65c.rmeta: crates/vine-dag/src/lib.rs Cargo.toml

crates/vine-dag/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
