/root/repo/target/debug/deps/repro-9ebb45dfc6b1bd2c.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-9ebb45dfc6b1bd2c: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
