/root/repo/target/debug/deps/integration_tests-23e3aed2ace06719.d: tests/src/lib.rs

/root/repo/target/debug/deps/integration_tests-23e3aed2ace06719: tests/src/lib.rs

tests/src/lib.rs:
