/root/repo/target/debug/deps/quickstart-4811a02c5501293f.d: examples/quickstart.rs

/root/repo/target/debug/deps/quickstart-4811a02c5501293f: examples/quickstart.rs

examples/quickstart.rs:
