/root/repo/target/debug/deps/vine_runtime-10ac17354a222fe2.d: crates/vine-runtime/src/lib.rs crates/vine-runtime/src/library_host.rs crates/vine-runtime/src/runtime.rs crates/vine-runtime/src/worker_host.rs

/root/repo/target/debug/deps/libvine_runtime-10ac17354a222fe2.rlib: crates/vine-runtime/src/lib.rs crates/vine-runtime/src/library_host.rs crates/vine-runtime/src/runtime.rs crates/vine-runtime/src/worker_host.rs

/root/repo/target/debug/deps/libvine_runtime-10ac17354a222fe2.rmeta: crates/vine-runtime/src/lib.rs crates/vine-runtime/src/library_host.rs crates/vine-runtime/src/runtime.rs crates/vine-runtime/src/worker_host.rs

crates/vine-runtime/src/lib.rs:
crates/vine-runtime/src/library_host.rs:
crates/vine-runtime/src/runtime.rs:
crates/vine-runtime/src/worker_host.rs:
