/root/repo/target/debug/deps/live_cluster-b333c1a949d3cbcb.d: crates/vine-runtime/tests/live_cluster.rs Cargo.toml

/root/repo/target/debug/deps/liblive_cluster-b333c1a949d3cbcb.rmeta: crates/vine-runtime/tests/live_cluster.rs Cargo.toml

crates/vine-runtime/tests/live_cluster.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
