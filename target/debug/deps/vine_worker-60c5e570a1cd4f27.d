/root/repo/target/debug/deps/vine_worker-60c5e570a1cd4f27.d: crates/vine-worker/src/lib.rs crates/vine-worker/src/library.rs crates/vine-worker/src/protocol.rs crates/vine-worker/src/sandbox.rs crates/vine-worker/src/state.rs

/root/repo/target/debug/deps/libvine_worker-60c5e570a1cd4f27.rlib: crates/vine-worker/src/lib.rs crates/vine-worker/src/library.rs crates/vine-worker/src/protocol.rs crates/vine-worker/src/sandbox.rs crates/vine-worker/src/state.rs

/root/repo/target/debug/deps/libvine_worker-60c5e570a1cd4f27.rmeta: crates/vine-worker/src/lib.rs crates/vine-worker/src/library.rs crates/vine-worker/src/protocol.rs crates/vine-worker/src/sandbox.rs crates/vine-worker/src/state.rs

crates/vine-worker/src/lib.rs:
crates/vine-worker/src/library.rs:
crates/vine-worker/src/protocol.rs:
crates/vine-worker/src/sandbox.rs:
crates/vine-worker/src/state.rs:
