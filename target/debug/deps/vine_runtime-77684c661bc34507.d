/root/repo/target/debug/deps/vine_runtime-77684c661bc34507.d: crates/vine-runtime/src/lib.rs crates/vine-runtime/src/library_host.rs crates/vine-runtime/src/runtime.rs crates/vine-runtime/src/worker_host.rs Cargo.toml

/root/repo/target/debug/deps/libvine_runtime-77684c661bc34507.rmeta: crates/vine-runtime/src/lib.rs crates/vine-runtime/src/library_host.rs crates/vine-runtime/src/runtime.rs crates/vine-runtime/src/worker_host.rs Cargo.toml

crates/vine-runtime/src/lib.rs:
crates/vine-runtime/src/library_host.rs:
crates/vine-runtime/src/runtime.rs:
crates/vine-runtime/src/worker_host.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
