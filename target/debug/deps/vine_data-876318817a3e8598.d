/root/repo/target/debug/deps/vine_data-876318817a3e8598.d: crates/vine-data/src/lib.rs crates/vine-data/src/cache.rs crates/vine-data/src/sharedfs.rs crates/vine-data/src/store.rs

/root/repo/target/debug/deps/libvine_data-876318817a3e8598.rlib: crates/vine-data/src/lib.rs crates/vine-data/src/cache.rs crates/vine-data/src/sharedfs.rs crates/vine-data/src/store.rs

/root/repo/target/debug/deps/libvine_data-876318817a3e8598.rmeta: crates/vine-data/src/lib.rs crates/vine-data/src/cache.rs crates/vine-data/src/sharedfs.rs crates/vine-data/src/store.rs

crates/vine-data/src/lib.rs:
crates/vine-data/src/cache.rs:
crates/vine-data/src/sharedfs.rs:
crates/vine-data/src/store.rs:
