/root/repo/target/debug/deps/autocontext_live-9ea3ffd31ebd0a23.d: tests/tests/autocontext_live.rs

/root/repo/target/debug/deps/autocontext_live-9ea3ffd31ebd0a23: tests/tests/autocontext_live.rs

tests/tests/autocontext_live.rs:
