/root/repo/target/debug/deps/end_to_end-609c5026925bb891.d: tests/tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-609c5026925bb891: tests/tests/end_to_end.rs

tests/tests/end_to_end.rs:
