/root/repo/target/debug/deps/examol_design-61e335af5b5c6c70.d: examples/examol_design.rs Cargo.toml

/root/repo/target/debug/deps/libexamol_design-61e335af5b5c6c70.rmeta: examples/examol_design.rs Cargo.toml

examples/examol_design.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
