/root/repo/target/debug/deps/vine_manager-eae7bf4515edfa89.d: crates/vine-manager/src/lib.rs crates/vine-manager/src/index.rs crates/vine-manager/src/manager.rs crates/vine-manager/src/reference.rs crates/vine-manager/src/ring.rs

/root/repo/target/debug/deps/vine_manager-eae7bf4515edfa89: crates/vine-manager/src/lib.rs crates/vine-manager/src/index.rs crates/vine-manager/src/manager.rs crates/vine-manager/src/reference.rs crates/vine-manager/src/ring.rs

crates/vine-manager/src/lib.rs:
crates/vine-manager/src/index.rs:
crates/vine-manager/src/manager.rs:
crates/vine-manager/src/reference.rs:
crates/vine-manager/src/ring.rs:
