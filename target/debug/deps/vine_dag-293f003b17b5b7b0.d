/root/repo/target/debug/deps/vine_dag-293f003b17b5b7b0.d: crates/vine-dag/src/lib.rs

/root/repo/target/debug/deps/libvine_dag-293f003b17b5b7b0.rlib: crates/vine-dag/src/lib.rs

/root/repo/target/debug/deps/libvine_dag-293f003b17b5b7b0.rmeta: crates/vine-dag/src/lib.rs

crates/vine-dag/src/lib.rs:
