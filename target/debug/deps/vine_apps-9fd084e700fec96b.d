/root/repo/target/debug/deps/vine_apps-9fd084e700fec96b.d: crates/vine-apps/src/lib.rs crates/vine-apps/src/examol.rs crates/vine-apps/src/lnni.rs crates/vine-apps/src/modules.rs

/root/repo/target/debug/deps/vine_apps-9fd084e700fec96b: crates/vine-apps/src/lib.rs crates/vine-apps/src/examol.rs crates/vine-apps/src/lnni.rs crates/vine-apps/src/modules.rs

crates/vine-apps/src/lib.rs:
crates/vine-apps/src/examol.rs:
crates/vine-apps/src/lnni.rs:
crates/vine-apps/src/modules.rs:
