/root/repo/target/debug/deps/vine_apps-3a2b34967cd9c168.d: crates/vine-apps/src/lib.rs crates/vine-apps/src/examol.rs crates/vine-apps/src/lnni.rs crates/vine-apps/src/modules.rs

/root/repo/target/debug/deps/libvine_apps-3a2b34967cd9c168.rlib: crates/vine-apps/src/lib.rs crates/vine-apps/src/examol.rs crates/vine-apps/src/lnni.rs crates/vine-apps/src/modules.rs

/root/repo/target/debug/deps/libvine_apps-3a2b34967cd9c168.rmeta: crates/vine-apps/src/lib.rs crates/vine-apps/src/examol.rs crates/vine-apps/src/lnni.rs crates/vine-apps/src/modules.rs

crates/vine-apps/src/lib.rs:
crates/vine-apps/src/examol.rs:
crates/vine-apps/src/lnni.rs:
crates/vine-apps/src/modules.rs:
