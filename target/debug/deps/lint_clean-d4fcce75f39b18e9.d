/root/repo/target/debug/deps/lint_clean-d4fcce75f39b18e9.d: crates/bench/tests/lint_clean.rs Cargo.toml

/root/repo/target/debug/deps/liblint_clean-d4fcce75f39b18e9.rmeta: crates/bench/tests/lint_clean.rs Cargo.toml

crates/bench/tests/lint_clean.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
