/root/repo/target/debug/deps/live_cluster-c3c6f1ce424ded26.d: crates/vine-runtime/tests/live_cluster.rs

/root/repo/target/debug/deps/live_cluster-c3c6f1ce424ded26: crates/vine-runtime/tests/live_cluster.rs

crates/vine-runtime/tests/live_cluster.rs:
