/root/repo/target/debug/deps/lnni_inference-2d406f761ce99874.d: examples/lnni_inference.rs

/root/repo/target/debug/deps/lnni_inference-2d406f761ce99874: examples/lnni_inference.rs

examples/lnni_inference.rs:
