/root/repo/target/debug/deps/vine_env-dc026ea79eeff4e1.d: crates/vine-env/src/lib.rs crates/vine-env/src/archive.rs crates/vine-env/src/catalog.rs crates/vine-env/src/registry.rs crates/vine-env/src/resolve.rs

/root/repo/target/debug/deps/libvine_env-dc026ea79eeff4e1.rlib: crates/vine-env/src/lib.rs crates/vine-env/src/archive.rs crates/vine-env/src/catalog.rs crates/vine-env/src/registry.rs crates/vine-env/src/resolve.rs

/root/repo/target/debug/deps/libvine_env-dc026ea79eeff4e1.rmeta: crates/vine-env/src/lib.rs crates/vine-env/src/archive.rs crates/vine-env/src/catalog.rs crates/vine-env/src/registry.rs crates/vine-env/src/resolve.rs

crates/vine-env/src/lib.rs:
crates/vine-env/src/archive.rs:
crates/vine-env/src/catalog.rs:
crates/vine-env/src/registry.rs:
crates/vine-env/src/resolve.rs:
