/root/repo/target/debug/deps/vine_worker-e8bdd532337b22ef.d: crates/vine-worker/src/lib.rs crates/vine-worker/src/library.rs crates/vine-worker/src/protocol.rs crates/vine-worker/src/sandbox.rs crates/vine-worker/src/state.rs Cargo.toml

/root/repo/target/debug/deps/libvine_worker-e8bdd532337b22ef.rmeta: crates/vine-worker/src/lib.rs crates/vine-worker/src/library.rs crates/vine-worker/src/protocol.rs crates/vine-worker/src/sandbox.rs crates/vine-worker/src/state.rs Cargo.toml

crates/vine-worker/src/lib.rs:
crates/vine-worker/src/library.rs:
crates/vine-worker/src/protocol.rs:
crates/vine-worker/src/sandbox.rs:
crates/vine-worker/src/state.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
