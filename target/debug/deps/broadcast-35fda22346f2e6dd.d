/root/repo/target/debug/deps/broadcast-35fda22346f2e6dd.d: crates/bench/benches/broadcast.rs Cargo.toml

/root/repo/target/debug/deps/libbroadcast-35fda22346f2e6dd.rmeta: crates/bench/benches/broadcast.rs Cargo.toml

crates/bench/benches/broadcast.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
