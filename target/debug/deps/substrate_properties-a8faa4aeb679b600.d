/root/repo/target/debug/deps/substrate_properties-a8faa4aeb679b600.d: tests/tests/substrate_properties.rs Cargo.toml

/root/repo/target/debug/deps/libsubstrate_properties-a8faa4aeb679b600.rmeta: tests/tests/substrate_properties.rs Cargo.toml

tests/tests/substrate_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
