/root/repo/target/debug/deps/vine_core-f5a563f751434231.d: crates/vine-core/src/lib.rs crates/vine-core/src/config.rs crates/vine-core/src/context.rs crates/vine-core/src/error.rs crates/vine-core/src/ids.rs crates/vine-core/src/resources.rs crates/vine-core/src/task.rs crates/vine-core/src/time.rs crates/vine-core/src/trace.rs

/root/repo/target/debug/deps/libvine_core-f5a563f751434231.rlib: crates/vine-core/src/lib.rs crates/vine-core/src/config.rs crates/vine-core/src/context.rs crates/vine-core/src/error.rs crates/vine-core/src/ids.rs crates/vine-core/src/resources.rs crates/vine-core/src/task.rs crates/vine-core/src/time.rs crates/vine-core/src/trace.rs

/root/repo/target/debug/deps/libvine_core-f5a563f751434231.rmeta: crates/vine-core/src/lib.rs crates/vine-core/src/config.rs crates/vine-core/src/context.rs crates/vine-core/src/error.rs crates/vine-core/src/ids.rs crates/vine-core/src/resources.rs crates/vine-core/src/task.rs crates/vine-core/src/time.rs crates/vine-core/src/trace.rs

crates/vine-core/src/lib.rs:
crates/vine-core/src/config.rs:
crates/vine-core/src/context.rs:
crates/vine-core/src/error.rs:
crates/vine-core/src/ids.rs:
crates/vine-core/src/resources.rs:
crates/vine-core/src/task.rs:
crates/vine-core/src/time.rs:
crates/vine-core/src/trace.rs:
