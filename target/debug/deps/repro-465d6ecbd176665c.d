/root/repo/target/debug/deps/repro-465d6ecbd176665c.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-465d6ecbd176665c: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
