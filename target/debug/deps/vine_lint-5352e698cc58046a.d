/root/repo/target/debug/deps/vine_lint-5352e698cc58046a.d: crates/vine-lint/src/lib.rs crates/vine-lint/src/dag.rs crates/vine-lint/src/diag.rs crates/vine-lint/src/environment.rs crates/vine-lint/src/language.rs crates/vine-lint/src/placement.rs Cargo.toml

/root/repo/target/debug/deps/libvine_lint-5352e698cc58046a.rmeta: crates/vine-lint/src/lib.rs crates/vine-lint/src/dag.rs crates/vine-lint/src/diag.rs crates/vine-lint/src/environment.rs crates/vine-lint/src/language.rs crates/vine-lint/src/placement.rs Cargo.toml

crates/vine-lint/src/lib.rs:
crates/vine-lint/src/dag.rs:
crates/vine-lint/src/diag.rs:
crates/vine-lint/src/environment.rs:
crates/vine-lint/src/language.rs:
crates/vine-lint/src/placement.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
