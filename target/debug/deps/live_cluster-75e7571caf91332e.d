/root/repo/target/debug/deps/live_cluster-75e7571caf91332e.d: crates/vine-runtime/tests/live_cluster.rs

/root/repo/target/debug/deps/live_cluster-75e7571caf91332e: crates/vine-runtime/tests/live_cluster.rs

crates/vine-runtime/tests/live_cluster.rs:
