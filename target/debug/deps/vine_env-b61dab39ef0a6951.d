/root/repo/target/debug/deps/vine_env-b61dab39ef0a6951.d: crates/vine-env/src/lib.rs crates/vine-env/src/archive.rs crates/vine-env/src/catalog.rs crates/vine-env/src/registry.rs crates/vine-env/src/resolve.rs Cargo.toml

/root/repo/target/debug/deps/libvine_env-b61dab39ef0a6951.rmeta: crates/vine-env/src/lib.rs crates/vine-env/src/archive.rs crates/vine-env/src/catalog.rs crates/vine-env/src/registry.rs crates/vine-env/src/resolve.rs Cargo.toml

crates/vine-env/src/lib.rs:
crates/vine-env/src/archive.rs:
crates/vine-env/src/catalog.rs:
crates/vine-env/src/registry.rs:
crates/vine-env/src/resolve.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
