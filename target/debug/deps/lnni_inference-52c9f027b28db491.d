/root/repo/target/debug/deps/lnni_inference-52c9f027b28db491.d: examples/lnni_inference.rs Cargo.toml

/root/repo/target/debug/deps/liblnni_inference-52c9f027b28db491.rmeta: examples/lnni_inference.rs Cargo.toml

examples/lnni_inference.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
