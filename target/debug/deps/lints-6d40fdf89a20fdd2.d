/root/repo/target/debug/deps/lints-6d40fdf89a20fdd2.d: crates/vine-lint/tests/lints.rs

/root/repo/target/debug/deps/lints-6d40fdf89a20fdd2: crates/vine-lint/tests/lints.rs

crates/vine-lint/tests/lints.rs:
