/root/repo/target/debug/deps/proptest-cb40e8fe7f65284d.d: shims/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-cb40e8fe7f65284d.rlib: shims/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-cb40e8fe7f65284d.rmeta: shims/proptest/src/lib.rs

shims/proptest/src/lib.rs:
