/root/repo/target/debug/deps/integration_tests-7d03f9fa7cad96d3.d: tests/src/lib.rs

/root/repo/target/debug/deps/libintegration_tests-7d03f9fa7cad96d3.rlib: tests/src/lib.rs

/root/repo/target/debug/deps/libintegration_tests-7d03f9fa7cad96d3.rmeta: tests/src/lib.rs

tests/src/lib.rs:
