/root/repo/target/debug/deps/lang-ae8a613619d52aa5.d: crates/bench/benches/lang.rs Cargo.toml

/root/repo/target/debug/deps/liblang-ae8a613619d52aa5.rmeta: crates/bench/benches/lang.rs Cargo.toml

crates/bench/benches/lang.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
