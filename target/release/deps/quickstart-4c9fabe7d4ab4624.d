/root/repo/target/release/deps/quickstart-4c9fabe7d4ab4624.d: examples/quickstart.rs

/root/repo/target/release/deps/quickstart-4c9fabe7d4ab4624: examples/quickstart.rs

examples/quickstart.rs:
