/root/repo/target/release/deps/lnni_inference-1f2c3c7e819719cb.d: examples/lnni_inference.rs

/root/repo/target/release/deps/lnni_inference-1f2c3c7e819719cb: examples/lnni_inference.rs

examples/lnni_inference.rs:
