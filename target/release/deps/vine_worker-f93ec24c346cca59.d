/root/repo/target/release/deps/vine_worker-f93ec24c346cca59.d: crates/vine-worker/src/lib.rs crates/vine-worker/src/library.rs crates/vine-worker/src/protocol.rs crates/vine-worker/src/sandbox.rs crates/vine-worker/src/state.rs

/root/repo/target/release/deps/libvine_worker-f93ec24c346cca59.rlib: crates/vine-worker/src/lib.rs crates/vine-worker/src/library.rs crates/vine-worker/src/protocol.rs crates/vine-worker/src/sandbox.rs crates/vine-worker/src/state.rs

/root/repo/target/release/deps/libvine_worker-f93ec24c346cca59.rmeta: crates/vine-worker/src/lib.rs crates/vine-worker/src/library.rs crates/vine-worker/src/protocol.rs crates/vine-worker/src/sandbox.rs crates/vine-worker/src/state.rs

crates/vine-worker/src/lib.rs:
crates/vine-worker/src/library.rs:
crates/vine-worker/src/protocol.rs:
crates/vine-worker/src/sandbox.rs:
crates/vine-worker/src/state.rs:
