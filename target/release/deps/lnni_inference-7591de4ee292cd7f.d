/root/repo/target/release/deps/lnni_inference-7591de4ee292cd7f.d: examples/lnni_inference.rs

/root/repo/target/release/deps/lnni_inference-7591de4ee292cd7f: examples/lnni_inference.rs

examples/lnni_inference.rs:
