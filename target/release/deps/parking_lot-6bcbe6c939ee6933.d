/root/repo/target/release/deps/parking_lot-6bcbe6c939ee6933.d: shims/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-6bcbe6c939ee6933.rlib: shims/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-6bcbe6c939ee6933.rmeta: shims/parking_lot/src/lib.rs

shims/parking_lot/src/lib.rs:
