/root/repo/target/release/deps/vine_manager-7f21bfb01866aef1.d: crates/vine-manager/src/lib.rs crates/vine-manager/src/index.rs crates/vine-manager/src/manager.rs crates/vine-manager/src/reference.rs crates/vine-manager/src/ring.rs

/root/repo/target/release/deps/libvine_manager-7f21bfb01866aef1.rlib: crates/vine-manager/src/lib.rs crates/vine-manager/src/index.rs crates/vine-manager/src/manager.rs crates/vine-manager/src/reference.rs crates/vine-manager/src/ring.rs

/root/repo/target/release/deps/libvine_manager-7f21bfb01866aef1.rmeta: crates/vine-manager/src/lib.rs crates/vine-manager/src/index.rs crates/vine-manager/src/manager.rs crates/vine-manager/src/reference.rs crates/vine-manager/src/ring.rs

crates/vine-manager/src/lib.rs:
crates/vine-manager/src/index.rs:
crates/vine-manager/src/manager.rs:
crates/vine-manager/src/reference.rs:
crates/vine-manager/src/ring.rs:
