/root/repo/target/release/deps/vine_apps-b236f7a94f9d95a3.d: crates/vine-apps/src/lib.rs crates/vine-apps/src/examol.rs crates/vine-apps/src/lnni.rs crates/vine-apps/src/modules.rs

/root/repo/target/release/deps/libvine_apps-b236f7a94f9d95a3.rlib: crates/vine-apps/src/lib.rs crates/vine-apps/src/examol.rs crates/vine-apps/src/lnni.rs crates/vine-apps/src/modules.rs

/root/repo/target/release/deps/libvine_apps-b236f7a94f9d95a3.rmeta: crates/vine-apps/src/lib.rs crates/vine-apps/src/examol.rs crates/vine-apps/src/lnni.rs crates/vine-apps/src/modules.rs

crates/vine-apps/src/lib.rs:
crates/vine-apps/src/examol.rs:
crates/vine-apps/src/lnni.rs:
crates/vine-apps/src/modules.rs:
