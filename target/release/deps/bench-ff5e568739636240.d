/root/repo/target/release/deps/bench-ff5e568739636240.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs

/root/repo/target/release/deps/libbench-ff5e568739636240.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs

/root/repo/target/release/deps/libbench-ff5e568739636240.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/table.rs:
