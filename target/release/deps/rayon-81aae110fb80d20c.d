/root/repo/target/release/deps/rayon-81aae110fb80d20c.d: shims/rayon/src/lib.rs

/root/repo/target/release/deps/librayon-81aae110fb80d20c.rlib: shims/rayon/src/lib.rs

/root/repo/target/release/deps/librayon-81aae110fb80d20c.rmeta: shims/rayon/src/lib.rs

shims/rayon/src/lib.rs:
