/root/repo/target/release/deps/vine_core-2469c0e44ed0d897.d: crates/vine-core/src/lib.rs crates/vine-core/src/config.rs crates/vine-core/src/context.rs crates/vine-core/src/error.rs crates/vine-core/src/ids.rs crates/vine-core/src/resources.rs crates/vine-core/src/task.rs crates/vine-core/src/time.rs crates/vine-core/src/trace.rs

/root/repo/target/release/deps/libvine_core-2469c0e44ed0d897.rlib: crates/vine-core/src/lib.rs crates/vine-core/src/config.rs crates/vine-core/src/context.rs crates/vine-core/src/error.rs crates/vine-core/src/ids.rs crates/vine-core/src/resources.rs crates/vine-core/src/task.rs crates/vine-core/src/time.rs crates/vine-core/src/trace.rs

/root/repo/target/release/deps/libvine_core-2469c0e44ed0d897.rmeta: crates/vine-core/src/lib.rs crates/vine-core/src/config.rs crates/vine-core/src/context.rs crates/vine-core/src/error.rs crates/vine-core/src/ids.rs crates/vine-core/src/resources.rs crates/vine-core/src/task.rs crates/vine-core/src/time.rs crates/vine-core/src/trace.rs

crates/vine-core/src/lib.rs:
crates/vine-core/src/config.rs:
crates/vine-core/src/context.rs:
crates/vine-core/src/error.rs:
crates/vine-core/src/ids.rs:
crates/vine-core/src/resources.rs:
crates/vine-core/src/task.rs:
crates/vine-core/src/time.rs:
crates/vine-core/src/trace.rs:
