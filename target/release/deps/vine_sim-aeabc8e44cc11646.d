/root/repo/target/release/deps/vine_sim-aeabc8e44cc11646.d: crates/vine-sim/src/lib.rs crates/vine-sim/src/cluster.rs crates/vine-sim/src/engine.rs crates/vine-sim/src/reference.rs crates/vine-sim/src/run.rs

/root/repo/target/release/deps/libvine_sim-aeabc8e44cc11646.rlib: crates/vine-sim/src/lib.rs crates/vine-sim/src/cluster.rs crates/vine-sim/src/engine.rs crates/vine-sim/src/reference.rs crates/vine-sim/src/run.rs

/root/repo/target/release/deps/libvine_sim-aeabc8e44cc11646.rmeta: crates/vine-sim/src/lib.rs crates/vine-sim/src/cluster.rs crates/vine-sim/src/engine.rs crates/vine-sim/src/reference.rs crates/vine-sim/src/run.rs

crates/vine-sim/src/lib.rs:
crates/vine-sim/src/cluster.rs:
crates/vine-sim/src/engine.rs:
crates/vine-sim/src/reference.rs:
crates/vine-sim/src/run.rs:
