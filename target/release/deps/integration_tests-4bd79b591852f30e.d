/root/repo/target/release/deps/integration_tests-4bd79b591852f30e.d: tests/src/lib.rs

/root/repo/target/release/deps/libintegration_tests-4bd79b591852f30e.rlib: tests/src/lib.rs

/root/repo/target/release/deps/libintegration_tests-4bd79b591852f30e.rmeta: tests/src/lib.rs

tests/src/lib.rs:
