/root/repo/target/release/deps/examol_design-8f9e7659560352e7.d: examples/examol_design.rs

/root/repo/target/release/deps/examol_design-8f9e7659560352e7: examples/examol_design.rs

examples/examol_design.rs:
