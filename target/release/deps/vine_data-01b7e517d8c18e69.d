/root/repo/target/release/deps/vine_data-01b7e517d8c18e69.d: crates/vine-data/src/lib.rs crates/vine-data/src/cache.rs crates/vine-data/src/sharedfs.rs crates/vine-data/src/store.rs

/root/repo/target/release/deps/libvine_data-01b7e517d8c18e69.rlib: crates/vine-data/src/lib.rs crates/vine-data/src/cache.rs crates/vine-data/src/sharedfs.rs crates/vine-data/src/store.rs

/root/repo/target/release/deps/libvine_data-01b7e517d8c18e69.rmeta: crates/vine-data/src/lib.rs crates/vine-data/src/cache.rs crates/vine-data/src/sharedfs.rs crates/vine-data/src/store.rs

crates/vine-data/src/lib.rs:
crates/vine-data/src/cache.rs:
crates/vine-data/src/sharedfs.rs:
crates/vine-data/src/store.rs:
