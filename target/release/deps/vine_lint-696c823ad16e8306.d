/root/repo/target/release/deps/vine_lint-696c823ad16e8306.d: crates/vine-lint/src/lib.rs crates/vine-lint/src/dag.rs crates/vine-lint/src/diag.rs crates/vine-lint/src/environment.rs crates/vine-lint/src/language.rs crates/vine-lint/src/placement.rs

/root/repo/target/release/deps/libvine_lint-696c823ad16e8306.rlib: crates/vine-lint/src/lib.rs crates/vine-lint/src/dag.rs crates/vine-lint/src/diag.rs crates/vine-lint/src/environment.rs crates/vine-lint/src/language.rs crates/vine-lint/src/placement.rs

/root/repo/target/release/deps/libvine_lint-696c823ad16e8306.rmeta: crates/vine-lint/src/lib.rs crates/vine-lint/src/dag.rs crates/vine-lint/src/diag.rs crates/vine-lint/src/environment.rs crates/vine-lint/src/language.rs crates/vine-lint/src/placement.rs

crates/vine-lint/src/lib.rs:
crates/vine-lint/src/dag.rs:
crates/vine-lint/src/diag.rs:
crates/vine-lint/src/environment.rs:
crates/vine-lint/src/language.rs:
crates/vine-lint/src/placement.rs:
