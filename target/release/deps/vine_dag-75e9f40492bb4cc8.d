/root/repo/target/release/deps/vine_dag-75e9f40492bb4cc8.d: crates/vine-dag/src/lib.rs

/root/repo/target/release/deps/libvine_dag-75e9f40492bb4cc8.rlib: crates/vine-dag/src/lib.rs

/root/repo/target/release/deps/libvine_dag-75e9f40492bb4cc8.rmeta: crates/vine-dag/src/lib.rs

crates/vine-dag/src/lib.rs:
