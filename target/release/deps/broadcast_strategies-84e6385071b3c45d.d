/root/repo/target/release/deps/broadcast_strategies-84e6385071b3c45d.d: examples/broadcast_strategies.rs

/root/repo/target/release/deps/broadcast_strategies-84e6385071b3c45d: examples/broadcast_strategies.rs

examples/broadcast_strategies.rs:
