/root/repo/target/release/deps/serde-e19f0c62fb2b7416.d: shims/serde/src/lib.rs

/root/repo/target/release/deps/libserde-e19f0c62fb2b7416.rlib: shims/serde/src/lib.rs

/root/repo/target/release/deps/libserde-e19f0c62fb2b7416.rmeta: shims/serde/src/lib.rs

shims/serde/src/lib.rs:
