/root/repo/target/release/deps/vine_dag-5c95ee66b9e2bedb.d: crates/vine-dag/src/lib.rs

/root/repo/target/release/deps/libvine_dag-5c95ee66b9e2bedb.rlib: crates/vine-dag/src/lib.rs

/root/repo/target/release/deps/libvine_dag-5c95ee66b9e2bedb.rmeta: crates/vine-dag/src/lib.rs

crates/vine-dag/src/lib.rs:
