/root/repo/target/release/deps/bench-7edd099bd6182c97.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs

/root/repo/target/release/deps/libbench-7edd099bd6182c97.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs

/root/repo/target/release/deps/libbench-7edd099bd6182c97.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/table.rs:
