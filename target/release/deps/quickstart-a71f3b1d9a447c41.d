/root/repo/target/release/deps/quickstart-a71f3b1d9a447c41.d: examples/quickstart.rs

/root/repo/target/release/deps/quickstart-a71f3b1d9a447c41: examples/quickstart.rs

examples/quickstart.rs:
