/root/repo/target/release/deps/integration_tests-642c1cf23bd2b90a.d: tests/src/lib.rs

/root/repo/target/release/deps/libintegration_tests-642c1cf23bd2b90a.rlib: tests/src/lib.rs

/root/repo/target/release/deps/libintegration_tests-642c1cf23bd2b90a.rmeta: tests/src/lib.rs

tests/src/lib.rs:
