/root/repo/target/release/deps/examol_design-7596e282095e1c76.d: examples/examol_design.rs

/root/repo/target/release/deps/examol_design-7596e282095e1c76: examples/examol_design.rs

examples/examol_design.rs:
