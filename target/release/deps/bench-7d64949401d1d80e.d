/root/repo/target/release/deps/bench-7d64949401d1d80e.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs

/root/repo/target/release/deps/libbench-7d64949401d1d80e.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs

/root/repo/target/release/deps/libbench-7d64949401d1d80e.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/table.rs:
