/root/repo/target/release/deps/serde_derive_shim-971962c8f48d125d.d: shims/serde_derive_shim/src/lib.rs

/root/repo/target/release/deps/libserde_derive_shim-971962c8f48d125d.so: shims/serde_derive_shim/src/lib.rs

shims/serde_derive_shim/src/lib.rs:
