/root/repo/target/release/deps/repro-38af1772a78d06c0.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-38af1772a78d06c0: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
