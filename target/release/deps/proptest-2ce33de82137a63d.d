/root/repo/target/release/deps/proptest-2ce33de82137a63d.d: shims/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-2ce33de82137a63d.rlib: shims/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-2ce33de82137a63d.rmeta: shims/proptest/src/lib.rs

shims/proptest/src/lib.rs:
