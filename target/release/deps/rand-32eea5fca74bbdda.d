/root/repo/target/release/deps/rand-32eea5fca74bbdda.d: shims/rand/src/lib.rs

/root/repo/target/release/deps/librand-32eea5fca74bbdda.rlib: shims/rand/src/lib.rs

/root/repo/target/release/deps/librand-32eea5fca74bbdda.rmeta: shims/rand/src/lib.rs

shims/rand/src/lib.rs:
