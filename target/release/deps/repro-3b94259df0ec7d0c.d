/root/repo/target/release/deps/repro-3b94259df0ec7d0c.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-3b94259df0ec7d0c: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
