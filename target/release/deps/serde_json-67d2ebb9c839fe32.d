/root/repo/target/release/deps/serde_json-67d2ebb9c839fe32.d: shims/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-67d2ebb9c839fe32.rlib: shims/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-67d2ebb9c839fe32.rmeta: shims/serde_json/src/lib.rs

shims/serde_json/src/lib.rs:
