/root/repo/target/release/deps/vine_env-05c016292e25f5d3.d: crates/vine-env/src/lib.rs crates/vine-env/src/archive.rs crates/vine-env/src/catalog.rs crates/vine-env/src/registry.rs crates/vine-env/src/resolve.rs

/root/repo/target/release/deps/libvine_env-05c016292e25f5d3.rlib: crates/vine-env/src/lib.rs crates/vine-env/src/archive.rs crates/vine-env/src/catalog.rs crates/vine-env/src/registry.rs crates/vine-env/src/resolve.rs

/root/repo/target/release/deps/libvine_env-05c016292e25f5d3.rmeta: crates/vine-env/src/lib.rs crates/vine-env/src/archive.rs crates/vine-env/src/catalog.rs crates/vine-env/src/registry.rs crates/vine-env/src/resolve.rs

crates/vine-env/src/lib.rs:
crates/vine-env/src/archive.rs:
crates/vine-env/src/catalog.rs:
crates/vine-env/src/registry.rs:
crates/vine-env/src/resolve.rs:
