/root/repo/target/release/deps/broadcast_strategies-ce607a149c445b9a.d: examples/broadcast_strategies.rs

/root/repo/target/release/deps/broadcast_strategies-ce607a149c445b9a: examples/broadcast_strategies.rs

examples/broadcast_strategies.rs:
