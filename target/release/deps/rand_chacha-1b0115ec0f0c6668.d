/root/repo/target/release/deps/rand_chacha-1b0115ec0f0c6668.d: shims/rand_chacha/src/lib.rs

/root/repo/target/release/deps/librand_chacha-1b0115ec0f0c6668.rlib: shims/rand_chacha/src/lib.rs

/root/repo/target/release/deps/librand_chacha-1b0115ec0f0c6668.rmeta: shims/rand_chacha/src/lib.rs

shims/rand_chacha/src/lib.rs:
