/root/repo/target/release/deps/vine_transfer-46e40294cee588b0.d: crates/vine-transfer/src/lib.rs

/root/repo/target/release/deps/libvine_transfer-46e40294cee588b0.rlib: crates/vine-transfer/src/lib.rs

/root/repo/target/release/deps/libvine_transfer-46e40294cee588b0.rmeta: crates/vine-transfer/src/lib.rs

crates/vine-transfer/src/lib.rs:
