/root/repo/target/release/deps/repro-5214995464947ecc.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-5214995464947ecc: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
