/root/repo/target/release/deps/serde_derive_shim-10d930661ce13ff6.d: shims/serde_derive_shim/src/lib.rs

/root/repo/target/release/deps/libserde_derive_shim-10d930661ce13ff6.so: shims/serde_derive_shim/src/lib.rs

shims/serde_derive_shim/src/lib.rs:
