/root/repo/target/release/deps/vine_runtime-5a0855f8f058d0c5.d: crates/vine-runtime/src/lib.rs crates/vine-runtime/src/library_host.rs crates/vine-runtime/src/runtime.rs crates/vine-runtime/src/worker_host.rs

/root/repo/target/release/deps/libvine_runtime-5a0855f8f058d0c5.rlib: crates/vine-runtime/src/lib.rs crates/vine-runtime/src/library_host.rs crates/vine-runtime/src/runtime.rs crates/vine-runtime/src/worker_host.rs

/root/repo/target/release/deps/libvine_runtime-5a0855f8f058d0c5.rmeta: crates/vine-runtime/src/lib.rs crates/vine-runtime/src/library_host.rs crates/vine-runtime/src/runtime.rs crates/vine-runtime/src/worker_host.rs

crates/vine-runtime/src/lib.rs:
crates/vine-runtime/src/library_host.rs:
crates/vine-runtime/src/runtime.rs:
crates/vine-runtime/src/worker_host.rs:
