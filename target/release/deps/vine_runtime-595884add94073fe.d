/root/repo/target/release/deps/vine_runtime-595884add94073fe.d: crates/vine-runtime/src/lib.rs crates/vine-runtime/src/library_host.rs crates/vine-runtime/src/runtime.rs crates/vine-runtime/src/worker_host.rs

/root/repo/target/release/deps/libvine_runtime-595884add94073fe.rlib: crates/vine-runtime/src/lib.rs crates/vine-runtime/src/library_host.rs crates/vine-runtime/src/runtime.rs crates/vine-runtime/src/worker_host.rs

/root/repo/target/release/deps/libvine_runtime-595884add94073fe.rmeta: crates/vine-runtime/src/lib.rs crates/vine-runtime/src/library_host.rs crates/vine-runtime/src/runtime.rs crates/vine-runtime/src/worker_host.rs

crates/vine-runtime/src/lib.rs:
crates/vine-runtime/src/library_host.rs:
crates/vine-runtime/src/runtime.rs:
crates/vine-runtime/src/worker_host.rs:
